package eval

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/lppm"
	"repro/internal/metrics"
)

func mkGridSweep(t *testing.T) *Sweep2D {
	t.Helper()
	pipe, err := lppm.NewPipeline("sampled-geoi", lppm.NewTemporalSampling(), lppm.NewGeoIndistinguishability())
	if err != nil {
		t.Fatal(err)
	}
	return &Sweep2D{
		Mechanism: pipe,
		ParamX:    "geoi.epsilon",
		ParamY:    "sampling.period_sec",
		ValuesX:   []float64{1e-3, 1e-2, 1e-1},
		ValuesY:   []float64{60, 600},
		Metrics: []metrics.Metric{
			metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		},
		Repeats: 1,
		Seed:    5,
	}
}

func TestRunGridShapeAndDeterminism(t *testing.T) {
	d := testDataset(t, 4)
	s := mkGridSweep(t)
	a, err := RunGrid(context.Background(), s, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(a.Rows))
	}
	for yi, row := range a.Rows {
		if len(row.Points) != 3 {
			t.Fatalf("row %d has %d points, want 3", yi, len(row.Points))
		}
	}
	b, err := RunGrid(context.Background(), s, d)
	if err != nil {
		t.Fatal(err)
	}
	for yi := range a.Rows {
		for xi := range a.Rows[yi].Points {
			va := a.Rows[yi].Points[xi].Mean["area_coverage"]
			vb := b.Rows[yi].Points[xi].Mean["area_coverage"]
			if va != vb {
				t.Fatalf("grid cell (%d,%d) differs across identical runs: %v vs %v", xi, yi, va, vb)
			}
		}
	}
}

func TestRunGridSurfaceAndAt(t *testing.T) {
	d := testDataset(t, 4)
	s := mkGridSweep(t)
	res, err := RunGrid(context.Background(), s, d)
	if err != nil {
		t.Fatal(err)
	}
	z, err := res.Surface("area_coverage")
	if err != nil {
		t.Fatal(err)
	}
	if len(z) != 2 || len(z[0]) != 3 {
		t.Fatalf("surface shape %dx%d, want 2x3", len(z), len(z[0]))
	}
	v, err := res.At("area_coverage", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != z[0][1] {
		t.Errorf("At(1,0)=%v, surface says %v", v, z[0][1])
	}
	// Utility must rise with ε within each sampling row.
	for yi := range z {
		if z[yi][0] >= z[yi][2] {
			t.Errorf("row %d: utility should rise with ε: %v", yi, z[yi])
		}
	}
	if _, err := res.At("area_coverage", 9, 0); err == nil {
		t.Error("out-of-range xi should fail")
	}
	if _, err := res.At("nope", 0, 0); err == nil {
		t.Error("unknown metric should fail")
	}
}

func TestSweep2DValidation(t *testing.T) {
	d := testDataset(t, 2)
	base := mkGridSweep(t)
	bad := []func(*Sweep2D){
		func(s *Sweep2D) { s.Mechanism = nil },
		func(s *Sweep2D) { s.ParamX = "" },
		func(s *Sweep2D) { s.ParamY = s.ParamX },
		func(s *Sweep2D) { s.ValuesX = nil },
		func(s *Sweep2D) { s.ValuesY = nil },
		func(s *Sweep2D) { s.Metrics = nil },
		func(s *Sweep2D) { s.Repeats = 0 },
		func(s *Sweep2D) { s.ParamX = "missing" },
	}
	for i, mutate := range bad {
		s := mkGridSweep(t)
		mutate(s)
		if _, err := RunGrid(context.Background(), s, d); err == nil {
			t.Errorf("case %d: invalid 2D sweep accepted", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid sweep rejected: %v", err)
	}
}

func TestRunGridCancellation(t *testing.T) {
	d := testDataset(t, 3)
	s := mkGridSweep(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunGrid(ctx, s, d); err == nil {
		t.Error("cancelled context should abort the grid")
	}
}

func TestWriteCSV2D(t *testing.T) {
	d := testDataset(t, 3)
	s := mkGridSweep(t)
	res, err := RunGrid(context.Background(), s, d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV2D(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 3×2 cells.
	if len(lines) != 1+6 {
		t.Fatalf("CSV has %d lines, want 7:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "geoi.epsilon,sampling.period_sec,area_coverage") {
		t.Errorf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if len(strings.Split(l, ",")) != 3 {
			t.Errorf("malformed row %q", l)
		}
	}
	if err := WriteCSV2D(&buf, &Result2D{}); err == nil {
		t.Error("empty result should fail")
	}
}
