package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV emits the sweep result as CSV: one row per grid value, one column
// pair (mean, std) per metric, metrics in sorted order. This is the file
// format cmd/lppm-sweep produces for plotting Figure 1.
func WriteCSV(w io.Writer, r *Result) error {
	if len(r.Points) == 0 {
		return fmt.Errorf("eval: empty result")
	}
	names := make([]string, 0, len(r.Points[0].Mean))
	for n := range r.Points[0].Mean {
		names = append(names, n)
	}
	sort.Strings(names)

	cw := csv.NewWriter(w)
	header := []string{r.Param}
	for _, n := range names {
		header = append(header, n+"_mean", n+"_std")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("eval: write header: %w", err)
	}
	for _, p := range r.Points {
		row := []string{strconv.FormatFloat(p.Value, 'g', 8, 64)}
		for _, n := range names {
			row = append(row,
				strconv.FormatFloat(p.Mean[n], 'f', 6, 64),
				strconv.FormatFloat(p.Std[n], 'f', 6, 64),
			)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("eval: write row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("eval: flush: %w", err)
	}
	return nil
}

// WriteCSV2D emits a factorial-sweep result in long format — one row per
// grid cell with both parameter values and every metric's mean — the shape
// plotting tools expect for surface/contour rendering.
func WriteCSV2D(w io.Writer, r *Result2D) error {
	if len(r.Rows) == 0 || len(r.Rows[0].Points) == 0 {
		return fmt.Errorf("eval: empty 2D result")
	}
	names := make([]string, 0, len(r.Rows[0].Points[0].Mean))
	for n := range r.Rows[0].Points[0].Mean {
		names = append(names, n)
	}
	sort.Strings(names)

	cw := csv.NewWriter(w)
	header := append([]string{r.ParamX, r.ParamY}, names...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("eval: write header: %w", err)
	}
	for yi, row := range r.Rows {
		for _, p := range row.Points {
			rec := []string{
				strconv.FormatFloat(p.Value, 'g', 8, 64),
				strconv.FormatFloat(r.ValuesY[yi], 'g', 8, 64),
			}
			for _, n := range names {
				rec = append(rec, strconv.FormatFloat(p.Mean[n], 'f', 6, 64))
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("eval: write row: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("eval: flush: %w", err)
	}
	return nil
}
