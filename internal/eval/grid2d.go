package eval

import (
	"context"
	"fmt"

	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Sweep2D describes a factorial experiment over two configuration
// parameters — the response surface behind the paper's multi-parameter
// Equation 1, f(p1, p2). The natural subjects are pipeline mechanisms
// ("sampling.period_sec" × "geoi.epsilon") and intrinsically two-knob
// mechanisms (elastic GEO-I's ε × elasticity).
type Sweep2D struct {
	// Mechanism is the LPPM under analysis.
	Mechanism lppm.Mechanism
	// ParamX and ParamY name the two swept parameters.
	ParamX, ParamY string
	// ValuesX and ValuesY are the per-axis grids.
	ValuesX, ValuesY []float64
	// Fixed holds values for any remaining parameters.
	Fixed lppm.Params
	// Metrics are evaluated at every grid cell.
	Metrics []metrics.Metric
	// Repeats is how many protection runs are averaged per cell.
	Repeats int
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the per-row worker pool; 0 means GOMAXPROCS.
	Workers int
}

// Validate reports configuration errors.
func (s *Sweep2D) Validate() error {
	if s.Mechanism == nil {
		return fmt.Errorf("eval: nil mechanism")
	}
	if s.ParamX == "" || s.ParamY == "" {
		return fmt.Errorf("eval: both parameter names are required")
	}
	if s.ParamX == s.ParamY {
		return fmt.Errorf("eval: ParamX and ParamY are both %q", s.ParamX)
	}
	if len(s.ValuesX) == 0 || len(s.ValuesY) == 0 {
		return fmt.Errorf("eval: empty grid (%d × %d)", len(s.ValuesX), len(s.ValuesY))
	}
	if len(s.Metrics) == 0 {
		return fmt.Errorf("eval: no metrics")
	}
	if s.Repeats < 1 {
		return fmt.Errorf("eval: Repeats must be >= 1, got %d", s.Repeats)
	}
	for _, name := range []string{s.ParamX, s.ParamY} {
		found := false
		for _, spec := range s.Mechanism.Params() {
			if spec.Name == name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("eval: mechanism %q has no parameter %q", s.Mechanism.Name(), name)
		}
	}
	return nil
}

// Result2D is a completed factorial sweep.
type Result2D struct {
	// MechanismName, ParamX and ParamY identify the experiment.
	MechanismName  string
	ParamX, ParamY string
	// ValuesX and ValuesY echo the grids.
	ValuesX, ValuesY []float64
	// Rows holds one 1D result per Y value, each sweeping the X grid.
	Rows []*Result
}

// Surface returns the metric means as a matrix indexed [yi][xi], ready for
// response-surface fitting.
func (r *Result2D) Surface(metric string) ([][]float64, error) {
	out := make([][]float64, len(r.Rows))
	for yi, row := range r.Rows {
		_, ys, err := row.Series(metric)
		if err != nil {
			return nil, err
		}
		out[yi] = ys
	}
	return out, nil
}

// At returns the metric mean at one grid cell.
func (r *Result2D) At(metric string, xi, yi int) (float64, error) {
	if yi < 0 || yi >= len(r.Rows) {
		return 0, fmt.Errorf("eval: yi %d outside grid height %d", yi, len(r.Rows))
	}
	row := r.Rows[yi]
	if xi < 0 || xi >= len(row.Points) {
		return 0, fmt.Errorf("eval: xi %d outside grid width %d", xi, len(row.Points))
	}
	v, ok := row.Points[xi].Mean[metric]
	if !ok {
		return 0, fmt.Errorf("eval: metric %q absent from sweep result", metric)
	}
	return v, nil
}

// RunGrid executes the factorial sweep: for each Y value, a full X sweep
// with Y held fixed. Each row derives an independent seed, so the grid is
// deterministic regardless of execution order, and cancelling ctx aborts
// between (and within) rows.
func RunGrid(ctx context.Context, s *Sweep2D, actual *trace.Dataset) (*Result2D, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(s.Seed)
	res := &Result2D{
		MechanismName: s.Mechanism.Name(),
		ParamX:        s.ParamX,
		ParamY:        s.ParamY,
		ValuesX:       append([]float64(nil), s.ValuesX...),
		ValuesY:       append([]float64(nil), s.ValuesY...),
		Rows:          make([]*Result, len(s.ValuesY)),
	}
	// One prepared-metric cache spans every row: the actual side never
	// changes across the grid, so re-preparing it per row would redo the
	// whole dataset's POI extraction and decimation |ValuesY| times.
	cache := NewMetricCache(s.Metrics)
	for yi, y := range s.ValuesY {
		fixed := s.Fixed.Clone()
		if fixed == nil {
			fixed = make(lppm.Params, 1)
		}
		fixed[s.ParamY] = y
		row := &Sweep{
			Mechanism: s.Mechanism,
			Param:     s.ParamX,
			Values:    s.ValuesX,
			Fixed:     fixed,
			Metrics:   s.Metrics,
			Repeats:   s.Repeats,
			Seed:      root.Split(int64(yi)).Seed(),
			Workers:   s.Workers,
		}
		out, err := RunCached(ctx, row, actual, cache)
		if err != nil {
			return nil, fmt.Errorf("eval: grid row %s=%v: %w", s.ParamY, y, err)
		}
		res.Rows[yi] = out
	}
	return res, nil
}
