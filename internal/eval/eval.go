// Package eval is the experiment engine of the framework: it sweeps an
// LPPM's configuration parameter over a grid of values, protects the dataset
// at every value, evaluates privacy and utility metrics per user, and
// aggregates the results into the metric-versus-parameter series that the
// modeling step fits (framework step 2, and Figure 1 of the paper).
//
// Work fans out over a bounded worker pool — one work item per (grid value,
// repeat) — and reduces deterministically: every work item derives its
// randomness from the sweep seed, the value index and the repeat index, so
// results are identical regardless of scheduling.
package eval

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"sync"

	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/stat"
	"repro/internal/trace"
)

// Sweep describes one parameter-sweep experiment.
type Sweep struct {
	// Mechanism is the LPPM under analysis.
	Mechanism lppm.Mechanism
	// Param is the name of the swept configuration parameter.
	Param string
	// Values is the grid of parameter values to evaluate.
	Values []float64
	// Fixed holds values for the mechanism's other parameters (may be
	// nil when the mechanism has only the swept one).
	Fixed lppm.Params
	// Metrics are evaluated at every grid value.
	Metrics []metrics.Metric
	// Repeats is how many independent protection runs are averaged per
	// grid value (≥ 1); more repeats smooth the stochastic mechanisms.
	Repeats int
	// Seed drives all randomness of the sweep.
	Seed int64
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
}

// Validate reports configuration errors.
func (s *Sweep) Validate() error {
	switch {
	case s.Mechanism == nil:
		return fmt.Errorf("eval: nil mechanism")
	case s.Param == "":
		return fmt.Errorf("eval: empty sweep parameter name")
	case len(s.Values) == 0:
		return fmt.Errorf("eval: empty value grid")
	case len(s.Metrics) == 0:
		return fmt.Errorf("eval: no metrics")
	case s.Repeats < 1:
		return fmt.Errorf("eval: Repeats must be >= 1, got %d", s.Repeats)
	case s.Workers < 0:
		return fmt.Errorf("eval: Workers must be >= 0, got %d", s.Workers)
	}
	declared := false
	for _, spec := range s.Mechanism.Params() {
		if spec.Name == s.Param {
			declared = true
			break
		}
	}
	if !declared {
		return fmt.Errorf("eval: mechanism %q has no parameter %q", s.Mechanism.Name(), s.Param)
	}
	return nil
}

// Point is the aggregated outcome at one grid value.
type Point struct {
	// Value is the parameter value.
	Value float64
	// Mean maps metric name to the across-user, across-repeat mean.
	Mean map[string]float64
	// Std maps metric name to the across-user standard deviation (of
	// per-user values pooled over repeats).
	Std map[string]float64
	// PerUser maps metric name → user → mean value over repeats.
	PerUser map[string]map[string]float64
}

// Result is a completed sweep.
type Result struct {
	// MechanismName and Param identify the experiment.
	MechanismName string
	Param         string
	// Points are ordered like Sweep.Values.
	Points []Point
	// Users lists the evaluated users.
	Users []string
}

// Series returns the (parameter value, metric mean) series for a metric, in
// grid order — exactly one curve of the paper's Figure 1.
func (r *Result) Series(metric string) (xs, ys []float64, err error) {
	xs = make([]float64, len(r.Points))
	ys = make([]float64, len(r.Points))
	for i, p := range r.Points {
		v, ok := p.Mean[metric]
		if !ok {
			return nil, nil, fmt.Errorf("eval: metric %q absent from sweep result", metric)
		}
		xs[i] = p.Value
		ys[i] = v
	}
	return xs, ys, nil
}

// workItem is one protection+evaluation unit: a grid value × repeat.
type workItem struct {
	valueIdx  int
	repeatIdx int
}

// workOutcome carries per-user metric values for one work item.
type workOutcome struct {
	workItem
	// perMetricUser[metricName][userIdx] is the metric value for that
	// user under this repeat.
	perMetricUser map[string][]float64
	err           error
}

// MetricCache memoizes prepared metric evaluators — the sweep metrics
// specialized to each user's actual trace (metrics.Prepare) — so the
// actual-side work (POI extraction, decimation, heat maps) is paid once per
// user per sweep instead of once per (grid value × repeat × user). Entries
// are keyed by user and validated against the trace's identity: passing a
// different *trace.Trace for a known user rebuilds that user's evaluators,
// which is what lets a long-lived cache (the reconfiguration controller's)
// survive dataset churn.
//
// A MetricCache is NOT safe for concurrent use: prepared evaluators own
// scratch buffers. Run hands a caller-provided cache to exactly one worker
// and gives the remaining workers their own.
type MetricCache struct {
	metrics []metrics.Metric
	users   map[string]*cacheEntry
}

// cacheEntry is one user's prepared evaluators, pinned to the trace they
// were prepared on.
type cacheEntry struct {
	trace    *trace.Trace
	prepared []metrics.PreparedMetric
}

// NewMetricCache returns an empty cache for the given metric list. The
// slice is captured; the per-user evaluators are built lazily by For.
func NewMetricCache(ms []metrics.Metric) *MetricCache {
	return &MetricCache{metrics: ms, users: make(map[string]*cacheEntry)}
}

// cacheMatch is the outcome of checking a cache against a sweep's metrics.
type cacheMatch int

const (
	// cacheMatches: the cache was provably built for these metric
	// instances (or equal comparable values) — safe to use.
	cacheMatches cacheMatch = iota
	// cacheMismatch: a metric provably differs (name, type, or value) —
	// using the cache would silently score with the wrong configuration.
	cacheMismatch
	// cacheUnprovable: same names and types, but a non-comparable dynamic
	// type makes identity unprovable — the cache must be bypassed
	// (correct, just uncached), not trusted and not refused loudly.
	cacheUnprovable
)

// match classifies the cache against a metric list. The check is by
// instance (same value for comparable metrics, in order), not by name: For
// prepares from the cache's own metric instances, so a cache built from a
// same-named metric with a different configuration would silently score
// every sweep with the stale config.
func (c *MetricCache) match(ms []metrics.Metric) cacheMatch {
	if len(c.metrics) != len(ms) {
		return cacheMismatch
	}
	out := cacheMatches
	for i, m := range ms {
		cm := c.metrics[i]
		t := reflect.TypeOf(m)
		if t != reflect.TypeOf(cm) || cm.Name() != m.Name() {
			return cacheMismatch
		}
		if !t.Comparable() {
			out = cacheUnprovable
			continue
		}
		if cm != m {
			return cacheMismatch
		}
	}
	return out
}

// For returns the user's prepared evaluators (one per cache metric, in
// order), building them on first use and rebuilding when the user's actual
// trace is not the one the entry was prepared on.
func (c *MetricCache) For(user string, actual *trace.Trace) []metrics.PreparedMetric {
	e := c.users[user]
	if e == nil || e.trace != actual {
		e = &cacheEntry{trace: actual, prepared: make([]metrics.PreparedMetric, len(c.metrics))}
		for i, m := range c.metrics {
			e.prepared[i] = metrics.Prepare(m, actual)
		}
		c.users[user] = e
	}
	return e.prepared
}

// Forget drops one user's prepared state (e.g. after the controller evicts
// an idle user).
func (c *MetricCache) Forget(user string) { delete(c.users, user) }

// Reset drops every user's prepared state, keeping the metric list.
func (c *MetricCache) Reset() { clear(c.users) }

// Run executes the sweep over the dataset. It honours ctx cancellation and
// returns the first error encountered.
func Run(ctx context.Context, s *Sweep, actual *trace.Dataset) (*Result, error) {
	return RunCached(ctx, s, actual, nil)
}

// RunCached is Run reusing a caller-owned MetricCache across sweeps over
// the same dataset — the reconfiguration controller's periodic re-analysis
// path. The cache must have been built for s.Metrics (an incompatible one
// is an error) and must not be used concurrently by the caller while the
// sweep runs; Run hands it to a single worker, so with Workers == 1 (or on
// a single-CPU host) every work item hits it. A nil cache makes every
// worker build its own, which is Run's behavior.
func RunCached(ctx context.Context, s *Sweep, actual *trace.Dataset, cache *MetricCache) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if actual == nil || actual.NumUsers() == 0 {
		return nil, fmt.Errorf("eval: empty dataset")
	}
	if cache != nil {
		switch cache.match(s.Metrics) {
		case cacheMismatch:
			return nil, fmt.Errorf("eval: metric cache built for different metrics")
		case cacheUnprovable:
			// A custom metric of non-comparable type: identity can't be
			// proven, so run correct-but-uncached rather than trusting a
			// possibly-stale config or failing a long-lived caller (the
			// controller's drift path) forever.
			cache = nil
		}
	}

	users := actual.Users()
	items := make([]workItem, 0, len(s.Values)*s.Repeats)
	for vi := range s.Values {
		for rep := 0; rep < s.Repeats; rep++ {
			items = append(items, workItem{valueIdx: vi, repeatIdx: rep})
		}
	}

	workers := s.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}

	itemCh := make(chan workItem)
	outCh := make(chan workOutcome, len(items))
	root := rng.New(s.Seed)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// The prepared-metric cache is per worker: prepared evaluators
		// own scratch and must not be shared across goroutines. Worker 0
		// inherits the caller's cache (cross-sweep reuse); the others
		// build their own, amortized across the items they process.
		wcache := cache
		if wcache == nil || w > 0 {
			wcache = NewMetricCache(s.Metrics)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range itemCh {
				outCh <- runItem(s, actual, users, wcache, root, it)
			}
		}()
	}

	// Feed items, honouring cancellation.
	var feedErr error
feed:
	for _, it := range items {
		select {
		case <-ctx.Done():
			feedErr = ctx.Err()
			break feed
		case itemCh <- it:
		}
	}
	close(itemCh)
	wg.Wait()
	close(outCh)

	outcomes := make([]workOutcome, 0, len(items))
	for o := range outCh {
		if o.err != nil {
			return nil, o.err
		}
		outcomes = append(outcomes, o)
	}
	if feedErr != nil {
		return nil, fmt.Errorf("eval: sweep cancelled: %w", feedErr)
	}

	return reduce(s, users, outcomes), nil
}

// runItem protects and evaluates one grid value × repeat, streaming user by
// user: each user's trace is protected, scored by every metric through the
// worker's prepared-evaluator cache, and released before the next user's is
// built. Peak memory is one protected trace per worker — not a full
// protected dataset — and the per-user random streams derive from the item
// stream by user name exactly as lppm.ProtectDataset derives them, so the
// output is bit-identical to protecting the whole dataset first.
func runItem(s *Sweep, actual *trace.Dataset, users []string, cache *MetricCache, root *rng.Source, it workItem) workOutcome {
	out := workOutcome{workItem: it, perMetricUser: make(map[string][]float64, len(s.Metrics))}
	fail := func(err error) workOutcome {
		out.err = err
		return out
	}

	params := s.Fixed.Clone()
	if params == nil {
		params = make(lppm.Params, 1)
	}
	params[s.Param] = s.Values[it.valueIdx]
	if err := lppm.ValidateParams(s.Mechanism, params); err != nil {
		return fail(fmt.Errorf("eval: value %v repeat %d: %w", s.Values[it.valueIdx], it.repeatIdx, err))
	}

	vals := make([][]float64, len(s.Metrics))
	for mi := range s.Metrics {
		vals[mi] = make([]float64, len(users))
	}

	// A deterministic stream per (value, repeat), split per user by name.
	r := root.Split(int64(it.valueIdx)*1_000_003 + int64(it.repeatIdx))
	for ui, u := range users {
		at := actual.Trace(u)
		protected, err := s.Mechanism.Protect(at, params, r.Named(u))
		if err != nil {
			return fail(fmt.Errorf("eval: value %v repeat %d: protect %s: %w", s.Values[it.valueIdx], it.repeatIdx, u, err))
		}
		prep := cache.For(u, at)
		for mi, m := range s.Metrics {
			v, err := prep[mi].Evaluate(protected)
			if err != nil {
				return fail(fmt.Errorf("eval: metric %s user %s: %w", m.Name(), u, err))
			}
			vals[mi][ui] = v
		}
	}
	for mi, m := range s.Metrics {
		out.perMetricUser[m.Name()] = vals[mi]
	}
	return out
}

// reduce merges work outcomes into ordered Points.
func reduce(s *Sweep, users []string, outcomes []workOutcome) *Result {
	res := &Result{
		MechanismName: s.Mechanism.Name(),
		Param:         s.Param,
		Points:        make([]Point, len(s.Values)),
		Users:         users,
	}
	// Outcomes arrive in completion order; sum repeats in repeat order so
	// the floating-point accumulation — and therefore the Result — is
	// bit-identical whatever the worker scheduling (with three or more
	// repeats, summing in arrival order would let the last bits drift).
	sort.Slice(outcomes, func(i, j int) bool {
		if outcomes[i].valueIdx != outcomes[j].valueIdx {
			return outcomes[i].valueIdx < outcomes[j].valueIdx
		}
		return outcomes[i].repeatIdx < outcomes[j].repeatIdx
	})
	// accum[valueIdx][metric][userIdx] = sum over repeats.
	type cell map[string][]float64
	accum := make([]cell, len(s.Values))
	for i := range accum {
		accum[i] = make(cell, len(s.Metrics))
		for _, m := range s.Metrics {
			accum[i][m.Name()] = make([]float64, len(users))
		}
	}
	for _, o := range outcomes {
		for name, vals := range o.perMetricUser {
			dst := accum[o.valueIdx][name]
			for ui, v := range vals {
				dst[ui] += v
			}
		}
	}
	for vi := range s.Values {
		p := Point{
			Value:   s.Values[vi],
			Mean:    make(map[string]float64, len(s.Metrics)),
			Std:     make(map[string]float64, len(s.Metrics)),
			PerUser: make(map[string]map[string]float64, len(s.Metrics)),
		}
		for _, m := range s.Metrics {
			name := m.Name()
			perUser := accum[vi][name]
			byUser := make(map[string]float64, len(users))
			for ui := range perUser {
				perUser[ui] /= float64(s.Repeats)
				byUser[users[ui]] = perUser[ui]
			}
			p.Mean[name] = stat.Mean(perUser)
			if len(perUser) >= 2 {
				p.Std[name] = stat.StdDev(perUser)
			}
			p.PerUser[name] = byUser
		}
		res.Points[vi] = p
	}
	return res
}
