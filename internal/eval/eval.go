// Package eval is the experiment engine of the framework: it sweeps an
// LPPM's configuration parameter over a grid of values, protects the dataset
// at every value, evaluates privacy and utility metrics per user, and
// aggregates the results into the metric-versus-parameter series that the
// modeling step fits (framework step 2, and Figure 1 of the paper).
//
// Work fans out over a bounded worker pool — one work item per (grid value,
// repeat) — and reduces deterministically: every work item derives its
// randomness from the sweep seed, the value index and the repeat index, so
// results are identical regardless of scheduling.
package eval

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/stat"
	"repro/internal/trace"
)

// Sweep describes one parameter-sweep experiment.
type Sweep struct {
	// Mechanism is the LPPM under analysis.
	Mechanism lppm.Mechanism
	// Param is the name of the swept configuration parameter.
	Param string
	// Values is the grid of parameter values to evaluate.
	Values []float64
	// Fixed holds values for the mechanism's other parameters (may be
	// nil when the mechanism has only the swept one).
	Fixed lppm.Params
	// Metrics are evaluated at every grid value.
	Metrics []metrics.Metric
	// Repeats is how many independent protection runs are averaged per
	// grid value (≥ 1); more repeats smooth the stochastic mechanisms.
	Repeats int
	// Seed drives all randomness of the sweep.
	Seed int64
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
}

// Validate reports configuration errors.
func (s *Sweep) Validate() error {
	switch {
	case s.Mechanism == nil:
		return fmt.Errorf("eval: nil mechanism")
	case s.Param == "":
		return fmt.Errorf("eval: empty sweep parameter name")
	case len(s.Values) == 0:
		return fmt.Errorf("eval: empty value grid")
	case len(s.Metrics) == 0:
		return fmt.Errorf("eval: no metrics")
	case s.Repeats < 1:
		return fmt.Errorf("eval: Repeats must be >= 1, got %d", s.Repeats)
	case s.Workers < 0:
		return fmt.Errorf("eval: Workers must be >= 0, got %d", s.Workers)
	}
	declared := false
	for _, spec := range s.Mechanism.Params() {
		if spec.Name == s.Param {
			declared = true
			break
		}
	}
	if !declared {
		return fmt.Errorf("eval: mechanism %q has no parameter %q", s.Mechanism.Name(), s.Param)
	}
	return nil
}

// Point is the aggregated outcome at one grid value.
type Point struct {
	// Value is the parameter value.
	Value float64
	// Mean maps metric name to the across-user, across-repeat mean.
	Mean map[string]float64
	// Std maps metric name to the across-user standard deviation (of
	// per-user values pooled over repeats).
	Std map[string]float64
	// PerUser maps metric name → user → mean value over repeats.
	PerUser map[string]map[string]float64
}

// Result is a completed sweep.
type Result struct {
	// MechanismName and Param identify the experiment.
	MechanismName string
	Param         string
	// Points are ordered like Sweep.Values.
	Points []Point
	// Users lists the evaluated users.
	Users []string
}

// Series returns the (parameter value, metric mean) series for a metric, in
// grid order — exactly one curve of the paper's Figure 1.
func (r *Result) Series(metric string) (xs, ys []float64, err error) {
	xs = make([]float64, len(r.Points))
	ys = make([]float64, len(r.Points))
	for i, p := range r.Points {
		v, ok := p.Mean[metric]
		if !ok {
			return nil, nil, fmt.Errorf("eval: metric %q absent from sweep result", metric)
		}
		xs[i] = p.Value
		ys[i] = v
	}
	return xs, ys, nil
}

// workItem is one protection+evaluation unit: a grid value × repeat.
type workItem struct {
	valueIdx  int
	repeatIdx int
}

// workOutcome carries per-user metric values for one work item.
type workOutcome struct {
	workItem
	// perMetricUser[metricName][userIdx] is the metric value for that
	// user under this repeat.
	perMetricUser map[string][]float64
	err           error
}

// Run executes the sweep over the dataset. It honours ctx cancellation and
// returns the first error encountered.
func Run(ctx context.Context, s *Sweep, actual *trace.Dataset) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if actual == nil || actual.NumUsers() == 0 {
		return nil, fmt.Errorf("eval: empty dataset")
	}

	users := actual.Users()
	items := make([]workItem, 0, len(s.Values)*s.Repeats)
	for vi := range s.Values {
		for rep := 0; rep < s.Repeats; rep++ {
			items = append(items, workItem{valueIdx: vi, repeatIdx: rep})
		}
	}

	workers := s.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}

	itemCh := make(chan workItem)
	outCh := make(chan workOutcome, len(items))
	root := rng.New(s.Seed)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range itemCh {
				outCh <- runItem(s, actual, users, root, it)
			}
		}()
	}

	// Feed items, honouring cancellation.
	var feedErr error
feed:
	for _, it := range items {
		select {
		case <-ctx.Done():
			feedErr = ctx.Err()
			break feed
		case itemCh <- it:
		}
	}
	close(itemCh)
	wg.Wait()
	close(outCh)

	outcomes := make([]workOutcome, 0, len(items))
	for o := range outCh {
		if o.err != nil {
			return nil, o.err
		}
		outcomes = append(outcomes, o)
	}
	if feedErr != nil {
		return nil, fmt.Errorf("eval: sweep cancelled: %w", feedErr)
	}

	return reduce(s, users, outcomes), nil
}

// runItem protects the dataset at one grid value and evaluates all metrics.
func runItem(s *Sweep, actual *trace.Dataset, users []string, root *rng.Source, it workItem) workOutcome {
	out := workOutcome{workItem: it, perMetricUser: make(map[string][]float64, len(s.Metrics))}

	params := s.Fixed.Clone()
	if params == nil {
		params = make(lppm.Params, 1)
	}
	params[s.Param] = s.Values[it.valueIdx]

	// A deterministic stream per (value, repeat); ProtectDataset further
	// splits per user.
	r := root.Split(int64(it.valueIdx)*1_000_003 + int64(it.repeatIdx))
	protected, err := lppm.ProtectDataset(actual, s.Mechanism, params, r)
	if err != nil {
		out.err = fmt.Errorf("eval: value %v repeat %d: %w", s.Values[it.valueIdx], it.repeatIdx, err)
		return out
	}

	for _, m := range s.Metrics {
		vals := make([]float64, len(users))
		for ui, u := range users {
			v, err := m.Evaluate(actual.Trace(u), protected.Trace(u))
			if err != nil {
				out.err = fmt.Errorf("eval: metric %s user %s: %w", m.Name(), u, err)
				return out
			}
			vals[ui] = v
		}
		out.perMetricUser[m.Name()] = vals
	}
	return out
}

// reduce merges work outcomes into ordered Points.
func reduce(s *Sweep, users []string, outcomes []workOutcome) *Result {
	res := &Result{
		MechanismName: s.Mechanism.Name(),
		Param:         s.Param,
		Points:        make([]Point, len(s.Values)),
		Users:         users,
	}
	// accum[valueIdx][metric][userIdx] = sum over repeats.
	type cell map[string][]float64
	accum := make([]cell, len(s.Values))
	for i := range accum {
		accum[i] = make(cell, len(s.Metrics))
		for _, m := range s.Metrics {
			accum[i][m.Name()] = make([]float64, len(users))
		}
	}
	for _, o := range outcomes {
		for name, vals := range o.perMetricUser {
			dst := accum[o.valueIdx][name]
			for ui, v := range vals {
				dst[ui] += v
			}
		}
	}
	for vi := range s.Values {
		p := Point{
			Value:   s.Values[vi],
			Mean:    make(map[string]float64, len(s.Metrics)),
			Std:     make(map[string]float64, len(s.Metrics)),
			PerUser: make(map[string]map[string]float64, len(s.Metrics)),
		}
		for _, m := range s.Metrics {
			name := m.Name()
			perUser := accum[vi][name]
			byUser := make(map[string]float64, len(users))
			for ui := range perUser {
				perUser[ui] /= float64(s.Repeats)
				byUser[users[ui]] = perUser[ui]
			}
			p.Mean[name] = stat.Mean(perUser)
			if len(perUser) >= 2 {
				p.Std[name] = stat.StdDev(perUser)
			}
			p.PerUser[name] = byUser
		}
		res.Points[vi] = p
	}
	return res
}
