package eval

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/trace"
)

var (
	t0     = time.Date(2008, 5, 17, 8, 0, 0, 0, time.UTC)
	anchor = geo.Point{Lat: 37.7749, Lng: -122.4194}
)

// testDataset builds a small dataset with stop-and-go users.
func testDataset(t *testing.T, users int) *trace.Dataset {
	t.Helper()
	d := trace.NewDataset()
	for u := 0; u < users; u++ {
		base := anchor.Offset(float64(u)*4000, 0)
		var recs []trace.Record
		user := string(rune('a' + u))
		for i := 0; i < 25; i++ { // 25-minute stop
			recs = append(recs, trace.Record{
				User: user, Time: t0.Add(time.Duration(i) * time.Minute),
				Point: base.Offset(float64(i%4)*4, float64(i%3)*4),
			})
		}
		for i := 0; i < 25; i++ { // excursion
			recs = append(recs, trace.Record{
				User: user, Time: t0.Add(time.Duration(25+i) * time.Minute),
				Point: base.Offset(float64(i+1)*120, 50),
			})
		}
		tr, err := trace.NewTrace(user, recs)
		if err != nil {
			t.Fatal(err)
		}
		d.Add(tr)
	}
	return d
}

func testSweep() *Sweep {
	return &Sweep{
		Mechanism: lppm.NewGeoIndistinguishability(),
		Param:     lppm.EpsilonParam,
		Values:    []float64{0.001, 0.01, 0.1, 1},
		Metrics: []metrics.Metric{
			metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
			metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		},
		Repeats: 2,
		Seed:    7,
	}
}

func TestSweepValidate(t *testing.T) {
	valid := testSweep()
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid sweep rejected: %v", err)
	}
	mutations := map[string]func(*Sweep){
		"nil mechanism": func(s *Sweep) { s.Mechanism = nil },
		"empty param":   func(s *Sweep) { s.Param = "" },
		"unknown param": func(s *Sweep) { s.Param = "nope" },
		"empty grid":    func(s *Sweep) { s.Values = nil },
		"no metrics":    func(s *Sweep) { s.Metrics = nil },
		"zero repeats":  func(s *Sweep) { s.Repeats = 0 },
		"neg workers":   func(s *Sweep) { s.Workers = -1 },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			s := testSweep()
			mutate(s)
			if err := s.Validate(); err == nil {
				t.Errorf("%s should fail validation", name)
			}
		})
	}
}

func TestRunProducesOrderedPoints(t *testing.T) {
	d := testDataset(t, 3)
	s := testSweep()
	res, err := Run(context.Background(), s, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.MechanismName != "geoi" || res.Param != lppm.EpsilonParam {
		t.Errorf("identity fields: %+v", res)
	}
	if len(res.Points) != len(s.Values) {
		t.Fatalf("points = %d, want %d", len(res.Points), len(s.Values))
	}
	for i, p := range res.Points {
		if p.Value != s.Values[i] {
			t.Errorf("point %d value %v, want %v", i, p.Value, s.Values[i])
		}
		for _, m := range s.Metrics {
			v, ok := p.Mean[m.Name()]
			if !ok {
				t.Fatalf("point %d missing metric %s", i, m.Name())
			}
			if math.IsNaN(v) {
				t.Errorf("point %d metric %s is NaN", i, m.Name())
			}
			if len(p.PerUser[m.Name()]) != 3 {
				t.Errorf("point %d metric %s has %d users", i, m.Name(), len(p.PerUser[m.Name()]))
			}
		}
	}
	if len(res.Users) != 3 {
		t.Errorf("users = %v", res.Users)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	d := testDataset(t, 3)
	run := func(workers int) *Result {
		s := testSweep()
		s.Workers = workers
		res, err := Run(context.Background(), s, d)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	for i := range seq.Points {
		for name, v := range seq.Points[i].Mean {
			if pv := par.Points[i].Mean[name]; pv != v {
				t.Fatalf("point %d metric %s: %v (1 worker) vs %v (8 workers)", i, name, v, pv)
			}
		}
	}
}

func TestRunMetricShapes(t *testing.T) {
	// Privacy (POI retrieval) must not decrease with epsilon; utility
	// (area coverage) must not decrease either — both improve as noise
	// shrinks.
	d := testDataset(t, 3)
	s := testSweep()
	s.Repeats = 3
	res, err := Run(context.Background(), s, d)
	if err != nil {
		t.Fatal(err)
	}
	_, pr, err := res.Series("poi_retrieval")
	if err != nil {
		t.Fatal(err)
	}
	_, ut, err := res.Series("area_coverage")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pr); i++ {
		if pr[i] < pr[i-1]-0.15 {
			t.Errorf("privacy series decreasing: %v", pr)
		}
		if ut[i] < ut[i-1]-0.15 {
			t.Errorf("utility series decreasing: %v", ut)
		}
	}
	if pr[0] > 0.2 {
		t.Errorf("heavy noise should hide POIs, got %v", pr[0])
	}
	if pr[len(pr)-1] < 0.8 {
		t.Errorf("light noise should expose POIs, got %v", pr[len(pr)-1])
	}
	if ut[len(ut)-1] < 0.95 {
		t.Errorf("light noise should keep coverage, got %v", ut[len(ut)-1])
	}
}

func TestRunCancellation(t *testing.T) {
	d := testDataset(t, 2)
	s := testSweep()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, s, d); err == nil {
		t.Error("cancelled context should error")
	}
}

func TestRunEmptyDataset(t *testing.T) {
	if _, err := Run(context.Background(), testSweep(), trace.NewDataset()); err == nil {
		t.Error("empty dataset should error")
	}
	if _, err := Run(context.Background(), testSweep(), nil); err == nil {
		t.Error("nil dataset should error")
	}
}

func TestRunInvalidSweep(t *testing.T) {
	s := testSweep()
	s.Repeats = 0
	if _, err := Run(context.Background(), s, testDataset(t, 1)); err == nil {
		t.Error("invalid sweep should error")
	}
}

func TestSeriesUnknownMetric(t *testing.T) {
	d := testDataset(t, 1)
	res, err := Run(context.Background(), testSweep(), d)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Series("nope"); err == nil {
		t.Error("unknown metric should error")
	}
}

func TestWriteCSV(t *testing.T) {
	d := testDataset(t, 2)
	res, err := Run(context.Background(), testSweep(), d)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+len(res.Points) {
		t.Fatalf("csv lines = %d, want %d", len(lines), 1+len(res.Points))
	}
	if !strings.HasPrefix(lines[0], "epsilon,area_coverage_mean,area_coverage_std,poi_retrieval_mean,poi_retrieval_std") {
		t.Errorf("header = %q", lines[0])
	}
	if err := WriteCSV(&sb, &Result{}); err == nil {
		t.Error("empty result should error")
	}
}
