package eval

import (
	"context"
	"testing"

	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/trace"
)

// legacyRun re-implements the pre-cache evaluation path exactly as the
// engine ran it before prepared metrics existed: materialize a full
// protected dataset per (value, repeat) with lppm.ProtectDataset, then
// score every user through the stateless Metric.Evaluate — no preparation,
// no scratch reuse, metric-major order. It feeds the same reduce, so any
// divergence in the comparison below is the evaluation path's.
func legacyRun(t *testing.T, s *Sweep, actual *trace.Dataset) *Result {
	t.Helper()
	users := actual.Users()
	root := rng.New(s.Seed)
	var outcomes []workOutcome
	for vi := range s.Values {
		for rep := 0; rep < s.Repeats; rep++ {
			out := workOutcome{
				workItem:      workItem{valueIdx: vi, repeatIdx: rep},
				perMetricUser: make(map[string][]float64, len(s.Metrics)),
			}
			params := s.Fixed.Clone()
			if params == nil {
				params = make(lppm.Params, 1)
			}
			params[s.Param] = s.Values[vi]
			r := root.Split(int64(vi)*1_000_003 + int64(rep))
			protected, err := lppm.ProtectDataset(actual, s.Mechanism, params, r)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range s.Metrics {
				vals := make([]float64, len(users))
				for ui, u := range users {
					v, err := m.Evaluate(actual.Trace(u), protected.Trace(u))
					if err != nil {
						t.Fatal(err)
					}
					vals[ui] = v
				}
				out.perMetricUser[m.Name()] = vals
			}
			outcomes = append(outcomes, out)
		}
	}
	return reduce(s, users, outcomes)
}

// requireIdenticalResults fails unless the two results agree bit for bit on
// every field the sweep's consumers read.
func requireIdenticalResults(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.MechanismName != want.MechanismName || got.Param != want.Param {
		t.Fatalf("%s: identity fields differ: %+v vs %+v", label, got, want)
	}
	if len(got.Users) != len(want.Users) {
		t.Fatalf("%s: users %v vs %v", label, got.Users, want.Users)
	}
	for i := range want.Users {
		if got.Users[i] != want.Users[i] {
			t.Fatalf("%s: users %v vs %v", label, got.Users, want.Users)
		}
	}
	if len(got.Points) != len(want.Points) {
		t.Fatalf("%s: %d points vs %d", label, len(got.Points), len(want.Points))
	}
	for i := range want.Points {
		wp, gp := want.Points[i], got.Points[i]
		if gp.Value != wp.Value {
			t.Fatalf("%s: point %d value %v vs %v", label, i, gp.Value, wp.Value)
		}
		for name, wv := range wp.Mean {
			if gv := gp.Mean[name]; gv != wv {
				t.Fatalf("%s: point %d mean[%s] = %v, want %v", label, i, name, gv, wv)
			}
		}
		for name, wv := range wp.Std {
			if gv := gp.Std[name]; gv != wv {
				t.Fatalf("%s: point %d std[%s] = %v, want %v", label, i, name, gv, wv)
			}
		}
		for name, byUser := range wp.PerUser {
			for u, wv := range byUser {
				if gv := gp.PerUser[name][u]; gv != wv {
					t.Fatalf("%s: point %d perUser[%s][%s] = %v, want %v", label, i, name, u, gv, wv)
				}
			}
		}
	}
}

// TestSweepEquivalencePreparedVsLegacy is the determinism contract of the
// prepared-metric engine: for the same seed, the cached/prepared path —
// sequential, parallel, or reusing one long-lived cache across runs — must
// produce an eval.Result bit-identical to the legacy unprepared path, for
// every built-in metric at once.
func TestSweepEquivalencePreparedVsLegacy(t *testing.T) {
	d := testDataset(t, 4)
	s := testSweep()
	// Every built-in metric rides along, so preparation bugs in any of
	// them (stale scratch, drifting accumulation order) break the test.
	s.Metrics = []metrics.Metric{
		metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		metrics.MeanDisplacement{},
		metrics.CoverageEntropyGain{CellSizeMeters: 200},
		metrics.MustTrajectorySimilarity(metrics.DefaultTrajectorySimilarityConfig()),
		metrics.MustRangeQueryAccuracy(metrics.DefaultRangeQueryConfig()),
		metrics.MustHeatmapSimilarity(metrics.DefaultHeatmapSimilarityConfig()),
	}
	// Three repeats: with fewer, an accumulation-order regression in
	// reduce could never surface (two-term float addition commutes).
	s.Repeats = 3

	want := legacyRun(t, s, d)

	for _, workers := range []int{1, 8} {
		s.Workers = workers
		got, err := Run(context.Background(), s, d)
		if err != nil {
			t.Fatal(err)
		}
		requireIdenticalResults(t, "prepared", want, got)
	}

	// A caller-owned cache reused across two runs must not drift either:
	// the second run scores through scratch the first run already warmed.
	cache := NewMetricCache(s.Metrics)
	s.Workers = 1
	for run := 0; run < 2; run++ {
		got, err := RunCached(context.Background(), s, d, cache)
		if err != nil {
			t.Fatal(err)
		}
		requireIdenticalResults(t, "cached run", want, got)
	}
}

// TestRunCachedRejectsForeignCache guards the positional prepared-slot
// contract: a cache built for different metrics is an error, not a silent
// misscore — including a same-named metric with a different configuration,
// which a name-based check would wave through and then score with the
// stale config.
func TestRunCachedRejectsForeignCache(t *testing.T) {
	d := testDataset(t, 2)
	s := testSweep()
	cache := NewMetricCache([]metrics.Metric{metrics.MeanDisplacement{}})
	if _, err := RunCached(context.Background(), s, d, cache); err == nil {
		t.Fatal("foreign cache should be rejected")
	}

	s.Metrics = []metrics.Metric{metrics.MustHeatmapSimilarity(metrics.HeatmapSimilarityConfig{CellSizeMeters: 500})}
	sameName := NewMetricCache([]metrics.Metric{metrics.MustHeatmapSimilarity(metrics.HeatmapSimilarityConfig{CellSizeMeters: 100})})
	if _, err := RunCached(context.Background(), s, d, sameName); err == nil {
		t.Fatal("same-named metric with different config should be rejected")
	}

	// The same instances (and equal comparable values) remain accepted.
	s = testSweep()
	ok := NewMetricCache(s.Metrics)
	if _, err := RunCached(context.Background(), s, d, ok); err != nil {
		t.Fatalf("identical metric instances rejected: %v", err)
	}
	s.Metrics = []metrics.Metric{metrics.MeanDisplacement{}}
	byValue := NewMetricCache([]metrics.Metric{metrics.MeanDisplacement{}})
	if _, err := RunCached(context.Background(), s, d, byValue); err != nil {
		t.Fatalf("equal comparable metric values rejected: %v", err)
	}
}

// sliceMetric has a non-comparable dynamic type: metric identity between a
// cache and a sweep cannot be proven for it.
type sliceMetric struct{ weights []float64 }

func (sliceMetric) Name() string       { return "slicey" }
func (sliceMetric) Kind() metrics.Kind { return metrics.Utility }
func (sliceMetric) Evaluate(actual, protected *trace.Trace) (float64, error) {
	return float64(protected.Len()) / float64(actual.Len()+1), nil
}

// TestRunCachedBypassesUnprovableCache: a metric of non-comparable type
// must neither be trusted (its config can't be checked) nor fail the run —
// a controller's drift path would otherwise error forever. The cache is
// bypassed and the sweep still completes.
func TestRunCachedBypassesUnprovableCache(t *testing.T) {
	d := testDataset(t, 2)
	s := testSweep()
	s.Metrics = []metrics.Metric{sliceMetric{weights: []float64{1}}}
	cache := NewMetricCache([]metrics.Metric{sliceMetric{weights: []float64{1}}})
	res, err := RunCached(context.Background(), s, d, cache)
	if err != nil {
		t.Fatalf("unprovable cache must be bypassed, not refused: %v", err)
	}
	if len(res.Points) != len(s.Values) {
		t.Fatalf("sweep incomplete: %d points", len(res.Points))
	}
}

// TestMetricCacheRebuildsOnTraceChange pins the identity-keyed rebuild: a
// new trace under the same user must not be scored with stale prepared
// state.
func TestMetricCacheRebuildsOnTraceChange(t *testing.T) {
	d := testDataset(t, 2)
	m := metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig())
	cache := NewMetricCache([]metrics.Metric{m})
	u := d.Users()[0]
	t1 := d.Trace(u)
	t2 := d.Trace(d.Users()[1]).Clone()
	t2.User = t1.User

	p1 := cache.For(u, t1)[0]
	if again := cache.For(u, t1)[0]; again != p1 {
		t.Fatal("same trace should hit the cache")
	}
	p2 := cache.For(u, t2)[0]
	if p2 == p1 {
		t.Fatal("changed trace should rebuild the prepared evaluator")
	}
	// The rebuilt evaluator must match a fresh unprepared evaluation.
	want, err1 := m.Evaluate(t2, t1)
	got, err2 := p2.Evaluate(t1)
	if err1 != nil || err2 != nil || want != got {
		t.Fatalf("rebuilt evaluator: got (%v, %v), want (%v, %v)", got, err2, want, err1)
	}
}
