package model

import (
	"fmt"
	"sort"
)

// SweepPoint is one measured operating point of a sweep: the parameter
// value with its observed privacy (lower = better) and utility (higher =
// better) metric values.
type SweepPoint struct {
	// X is the parameter value.
	X float64
	// Privacy is the measured privacy-metric value.
	Privacy float64
	// Utility is the measured utility-metric value.
	Utility float64
}

// ZipSweep pairs aligned series into sweep points.
func ZipSweep(xs, privacy, utility []float64) ([]SweepPoint, error) {
	if len(xs) != len(privacy) || len(xs) != len(utility) {
		return nil, fmt.Errorf("model: sweep series lengths differ: %d, %d, %d", len(xs), len(privacy), len(utility))
	}
	pts := make([]SweepPoint, len(xs))
	for i := range xs {
		pts[i] = SweepPoint{X: xs[i], Privacy: privacy[i], Utility: utility[i]}
	}
	return pts, nil
}

// ParetoFront returns the non-dominated operating points: those for which
// no other point has both strictly less privacy leakage and strictly more
// utility, removing duplicates. The front is sorted by increasing privacy
// (hence, along the front, increasing utility) and is what a designer
// inspects when the objectives turn out infeasible — it shows the best
// trade-offs the mechanism can actually reach.
func ParetoFront(points []SweepPoint) []SweepPoint {
	if len(points) == 0 {
		return nil
	}
	front := make([]SweepPoint, 0, len(points))
	for _, p := range points {
		dominated := false
		for _, q := range points {
			// q dominates p when it is at least as good on both
			// axes and strictly better on one.
			if (q.Privacy < p.Privacy && q.Utility >= p.Utility) ||
				(q.Privacy <= p.Privacy && q.Utility > p.Utility) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Privacy != front[j].Privacy { //lppm:allow floatcmp -- sort comparator: strict-weak ordering needs exact equality; a tolerance here is not transitive
			return front[i].Privacy < front[j].Privacy
		}
		return front[i].X < front[j].X
	})
	// Drop exact duplicates (identical privacy and utility).
	out := front[:0]
	for i, p := range front {
		if i > 0 && p.Privacy == front[i-1].Privacy && p.Utility == front[i-1].Utility { //lppm:allow floatcmp -- dedup of exact duplicates only (repeated sweep points); near-duplicates are distinct front members by design
			continue
		}
		out = append(out, p)
	}
	return out
}

// EmpiricalWindow returns the range of parameter values whose *measured*
// metrics satisfy both objectives — the model-free counterpart of
// Configure, useful to validate a model-based recommendation against the
// raw sweep. ok is false when no sampled point satisfies both.
func EmpiricalWindow(points []SweepPoint, obj Objectives) (lo, hi float64, ok bool) {
	for _, p := range points {
		if p.Privacy <= obj.MaxPrivacy && p.Utility >= obj.MinUtility {
			if !ok {
				lo, hi, ok = p.X, p.X, true
				continue
			}
			if p.X < lo {
				lo = p.X
			}
			if p.X > hi {
				hi = p.X
			}
		}
	}
	return lo, hi, ok
}

// KneePoint returns the front point maximizing (utility − privacy), a
// scale-free "best balanced trade-off" summary of the front; ok is false
// for an empty front. With both paper metrics being fractions of the same
// [0, 1] scale, this is the point a designer without hard objectives would
// pick.
func KneePoint(front []SweepPoint) (SweepPoint, bool) {
	if len(front) == 0 {
		return SweepPoint{}, false
	}
	best := front[0]
	for _, p := range front[1:] {
		if p.Utility-p.Privacy > best.Utility-best.Privacy {
			best = p
		}
	}
	return best, true
}
