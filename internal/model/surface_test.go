package model

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stat"
)

// mkSurfaceData samples z = a + bx·ln(x) + by·ln(y) (+ noise) on a grid.
func mkSurfaceData(a, bx, by, noise float64, seed int64) (xs, ys []float64, z [][]float64) {
	r := rng.New(seed)
	xs = stat.LogSpace(1e-3, 1, 8)
	ys = stat.LogSpace(60, 3600, 5)
	z = make([][]float64, len(ys))
	for yi, y := range ys {
		z[yi] = make([]float64, len(xs))
		for xi, x := range xs {
			z[yi][xi] = a + bx*math.Log(x) + by*math.Log(y) + noise*r.NormFloat64()
		}
	}
	return xs, ys, z
}

func TestFitSurfaceRecoversCoefficients(t *testing.T) {
	xs, ys, z := mkSurfaceData(1.5, 0.2, -0.1, 0, 1)
	s, err := FitSurface(xs, ys, z, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.A-1.5) > 1e-9 || math.Abs(s.Bx-0.2) > 1e-9 || math.Abs(s.By+0.1) > 1e-9 {
		t.Errorf("coefficients = (%v, %v, %v), want (1.5, 0.2, -0.1)", s.A, s.Bx, s.By)
	}
	if s.R2 < 1-1e-12 {
		t.Errorf("R² = %v on noiseless data, want 1", s.R2)
	}
}

func TestFitSurfaceWithNoise(t *testing.T) {
	xs, ys, z := mkSurfaceData(1.5, 0.2, -0.1, 0.02, 2)
	s, err := FitSurface(xs, ys, z, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Bx-0.2) > 0.03 || math.Abs(s.By+0.1) > 0.03 {
		t.Errorf("slopes = (%v, %v), want ≈ (0.2, -0.1)", s.Bx, s.By)
	}
	if s.R2 < 0.95 {
		t.Errorf("R² = %v under mild noise", s.R2)
	}
}

func TestSurfacePredictInvertXRoundTrip(t *testing.T) {
	xs, ys, z := mkSurfaceData(0.8, 0.15, -0.05, 0, 3)
	s, err := FitSurface(xs, ys, z, true, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range []float64{60, 600, 3600} {
		for _, x := range []float64{1e-3, 1e-2, 1e-1} {
			zv := s.Predict(x, y)
			back, err := s.InvertX(zv, y)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(math.Log(back)-math.Log(x)) > 1e-9 {
				t.Errorf("round trip (%v, %v): got %v", x, y, back)
			}
		}
	}
}

func TestSurfaceLinearAxes(t *testing.T) {
	// Linear y axis: z = 1 + 0.5·ln(x) + 0.01·y.
	xs := stat.LogSpace(1e-2, 1, 5)
	ys := []float64{0, 5, 10}
	z := make([][]float64, len(ys))
	for yi, y := range ys {
		z[yi] = make([]float64, len(xs))
		for xi, x := range xs {
			z[yi][xi] = 1 + 0.5*math.Log(x) + 0.01*y
		}
	}
	s, err := FitSurface(xs, ys, z, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.By-0.01) > 1e-9 {
		t.Errorf("linear-axis slope = %v, want 0.01", s.By)
	}
}

func TestFitSurfaceErrors(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{1, 2}
	ok := [][]float64{{1, 2, 3}, {2, 3, 4}}
	if _, err := FitSurface(xs[:1], ys, ok, false, false); err == nil {
		t.Error("1-wide grid should fail")
	}
	if _, err := FitSurface(xs, ys, ok[:1], false, false); err == nil {
		t.Error("row-count mismatch should fail")
	}
	if _, err := FitSurface(xs, ys, [][]float64{{1, 2}, {2, 3}}, false, false); err == nil {
		t.Error("ragged row should fail")
	}
	if _, err := FitSurface([]float64{1, 1, 2}, ys, ok, false, false); err == nil {
		t.Error("non-increasing axis should fail")
	}
	if _, err := FitSurface([]float64{-1, 1, 2}, ys, ok, true, false); err == nil {
		t.Error("non-positive log axis should fail")
	}
	flat := Surface{A: 1}
	if _, err := flat.InvertX(1, 1); err == nil {
		t.Error("zero x-slope inversion should fail")
	}
}

func TestFeasiblePairs(t *testing.T) {
	xs := []float64{0.001, 0.01}
	ys := []float64{60, 600}
	privacy := [][]float64{{0.0, 0.2}, {0.0, 0.05}}
	utility := [][]float64{{0.5, 0.9}, {0.6, 0.85}}
	obj := Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}
	cells, best, ok := FeasiblePairs(xs, ys, privacy, utility, obj)
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	if !ok {
		t.Fatal("expected a feasible pair")
	}
	// Only (x=0.01, y=600) is feasible: privacy 0.05 ≤ 0.1, utility 0.85 ≥ 0.8.
	if best.X != 0.01 || best.Y != 600 {
		t.Errorf("best = %+v, want (0.01, 600)", best)
	}
	var feasibleCount int
	for _, c := range cells {
		if c.Feasible {
			feasibleCount++
		}
	}
	if feasibleCount != 1 {
		t.Errorf("feasible cells = %d, want 1", feasibleCount)
	}
	if _, _, ok := FeasiblePairs(xs, ys, privacy, utility, Objectives{MaxPrivacy: -1, MinUtility: 2}); ok {
		t.Error("impossible objectives should report no feasible pair")
	}
}
