package model

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stat"
)

// noisySweep builds a Figure-1-like pair of series with controlled
// measurement noise.
func noisySweep(noise float64, seed int64) (xs, prs, uts []float64) {
	r := rng.New(seed)
	xs = stat.LogSpace(1e-4, 1, 25)
	prs = make([]float64, len(xs))
	uts = make([]float64, len(xs))
	// Constants chosen so the objectives Pr ≤ 0.10, Ut ≥ 0.80 leave a
	// comfortable feasible window x ∈ [0.0067, 0.0155].
	for i, x := range xs {
		pr := 0.6 + 0.12*math.Log(x)
		ut := 1.3 + 0.1*math.Log(x)
		prs[i] = stat.Clamp(pr+noise*r.NormFloat64(), 0, 1)
		uts[i] = stat.Clamp(ut+noise*r.NormFloat64(), 0, 1)
	}
	return xs, prs, uts
}

func TestBootstrapConfigureBasics(t *testing.T) {
	xs, prs, uts := noisySweep(0.01, 1)
	obj := Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}
	ci, err := BootstrapConfigure(rng.New(2), xs, prs, uts, 0.05, obj, 200, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Value.Lo > ci.Value.Point || ci.Value.Point > ci.Value.Hi {
		t.Errorf("point %v outside CI [%v, %v]", ci.Value.Point, ci.Value.Lo, ci.Value.Hi)
	}
	if ci.FeasibleFraction < 0.8 {
		t.Errorf("feasible fraction = %v under mild noise, want ≥ 0.8", ci.FeasibleFraction)
	}
	if ci.Replicates != 200 {
		t.Errorf("replicates = %d, want 200", ci.Replicates)
	}
}

func TestBootstrapConfigureWidensWithNoise(t *testing.T) {
	obj := Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}
	width := func(noise float64) float64 {
		xs, prs, uts := noisySweep(noise, 3)
		ci, err := BootstrapConfigure(rng.New(4), xs, prs, uts, 0.05, obj, 300, 0.9)
		if err != nil {
			t.Fatalf("noise %v: %v", noise, err)
		}
		return math.Log(ci.Value.Hi) - math.Log(ci.Value.Lo)
	}
	if quiet, loud := width(0.005), width(0.04); loud <= quiet {
		t.Errorf("CI width should grow with noise: %.4f (σ=0.005) vs %.4f (σ=0.04)", quiet, loud)
	}
}

func TestBootstrapConfigureErrors(t *testing.T) {
	xs, prs, uts := noisySweep(0.01, 5)
	obj := Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}
	if _, err := BootstrapConfigure(rng.New(1), xs, prs, uts, 0.05, obj, 1, 0.9); err == nil {
		t.Error("too few iterations should fail")
	}
	if _, err := BootstrapConfigure(rng.New(1), xs, prs, uts, 0.05, obj, 100, 1.5); err == nil {
		t.Error("bad level should fail")
	}
	// Impossible objectives: infeasible at the point estimate.
	bad := Objectives{MaxPrivacy: 0.0001, MinUtility: 0.9999}
	if _, err := BootstrapConfigure(rng.New(1), xs, prs, uts, 0.05, bad, 100, 0.9); err == nil {
		t.Error("infeasible objectives should fail")
	}
	// Flat series: base fit fails.
	flat := make([]float64, len(xs))
	if _, err := BootstrapConfigure(rng.New(1), xs, flat, uts, 0.05, obj, 100, 0.9); err == nil {
		t.Error("flat privacy series should fail")
	}
}

func TestQuantileSorted(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := quantileSorted(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := quantileSorted(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := quantileSorted(xs, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := quantileSorted([]float64{7}, 0.3); got != 7 {
		t.Errorf("singleton = %v", got)
	}
}
