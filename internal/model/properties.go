package model

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stat"
)

// PropertySelection is the outcome of framework step 1's dataset analysis:
// which dataset properties d_i vary enough, and correlate enough with the
// principal axes of the data, to deserve a place in the model f(p, d).
// For the paper's GEO-I illustration the selection comes back empty — the
// per-user metric variance is not explained by any property — matching the
// paper's "no dataset properties is considered".
type PropertySelection struct {
	// Names are the candidate property names, aligned with the input.
	Names []string
	// PCA is the fitted analysis over the standardized properties.
	PCA *stat.PCA
	// Selected are indices into Names of properties retained for the
	// model, ranked by importance.
	Selected []int
	// Importance[i] is the variance-weighted loading mass of property i
	// across the principal components (in [0, 1] after normalization).
	Importance []float64
}

// SelectProperties runs PCA on the per-user property matrix and retains
// properties whose variance-weighted loading mass is at least threshold
// (e.g. 0.2) AND whose correlation with the per-user metric outcome exceeds
// corrThreshold (e.g. 0.3). rows[i] must align with metricValues[i].
func SelectProperties(names []string, rows [][]float64, metricValues []float64, threshold, corrThreshold float64) (*PropertySelection, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("model: no property rows")
	}
	if len(rows[0]) != len(names) {
		return nil, fmt.Errorf("model: %d names for %d-column rows", len(names), len(rows[0]))
	}
	if len(metricValues) != len(rows) {
		return nil, fmt.Errorf("model: %d metric values for %d rows", len(metricValues), len(rows))
	}
	p, err := stat.FitPCA(rows)
	if err != nil {
		return nil, fmt.Errorf("model: property PCA: %w", err)
	}

	sel := &PropertySelection{Names: names, PCA: p, Importance: make([]float64, len(names))}

	// Variance-weighted squared loadings: importance_j = Σ_k evr_k·w_kj².
	for k := range p.Components {
		evr := p.ExplainedVarianceRatio[k]
		for j, w := range p.Components[k] {
			sel.Importance[j] += evr * w * w
		}
	}

	// A property earns selection by loading mass and by actually
	// correlating with the metric outcome across users.
	type cand struct {
		idx   int
		score float64
	}
	var cands []cand
	for j := range names {
		col := make([]float64, len(rows))
		for i, r := range rows {
			col[i] = r[j]
		}
		corr := stat.Correlation(col, metricValues)
		if math.IsNaN(corr) {
			continue
		}
		if sel.Importance[j] >= threshold && math.Abs(corr) >= corrThreshold {
			cands = append(cands, cand{idx: j, score: sel.Importance[j] * math.Abs(corr)})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	for _, c := range cands {
		sel.Selected = append(sel.Selected, c.idx)
	}
	return sel, nil
}

// SelectedNames resolves Selected indices to property names.
func (s *PropertySelection) SelectedNames() []string {
	out := make([]string, len(s.Selected))
	for i, idx := range s.Selected {
		out[i] = s.Names[idx]
	}
	return out
}
