// Package model implements the mathematical-modeling half of the framework
// (paper §3, steps 2 and 3): it detects the non-saturated zone of a
// metric-versus-parameter curve (the region between the vertical lines of
// Figure 1), fits the invertible log-linear relationship of Equation 2
//
//	metric = a + b·ln(parameter)
//
// over that zone, and inverts the fitted models to compute the parameter
// value meeting designer-specified privacy and utility objectives. It also
// provides the PCA-based selection of impactful dataset properties used in
// framework step 1.
package model

import (
	"fmt"
	"math"

	"repro/internal/stat"
)

// ActiveRegion is the index range [Lo, Hi] (inclusive) of a series where the
// metric actually responds to the parameter — outside it the curve is
// saturated and carries no configuration signal.
type ActiveRegion struct {
	Lo, Hi int
}

// Width returns the number of grid points inside the region.
func (a ActiveRegion) Width() int { return a.Hi - a.Lo + 1 }

// DetectActiveRegion finds the non-saturated zone of ys: the smallest index
// range outside which the curve stays within tolFrac of its endpoint
// plateaus. tolFrac is a fraction of the curve's total range (0.05 is a
// good default). It errors when the curve is flat or the region has fewer
// than three points to fit on.
func DetectActiveRegion(ys []float64, tolFrac float64) (ActiveRegion, error) {
	if len(ys) < 3 {
		return ActiveRegion{}, fmt.Errorf("model: need >= 3 points, got %d", len(ys))
	}
	if tolFrac <= 0 || tolFrac >= 0.5 {
		return ActiveRegion{}, fmt.Errorf("model: tolFrac must be in (0, 0.5), got %v", tolFrac)
	}
	lo0, hi0 := ys[0], ys[0]
	for _, y := range ys[1:] {
		lo0 = math.Min(lo0, y)
		hi0 = math.Max(hi0, y)
	}
	span := hi0 - lo0
	if span <= 0 {
		return ActiveRegion{}, fmt.Errorf("model: flat curve, nothing to model")
	}
	tol := span * tolFrac

	// Walk in from the left while the curve hugs the left plateau.
	lo := 0
	for lo < len(ys)-1 && math.Abs(ys[lo+1]-ys[0]) <= tol {
		lo++
	}
	// Walk in from the right while the curve hugs the right plateau.
	hi := len(ys) - 1
	last := ys[len(ys)-1]
	for hi > 0 && math.Abs(ys[hi-1]-last) <= tol {
		hi--
	}
	// Include one plateau point on each side so the fit is anchored.
	if lo > 0 {
		lo--
	}
	if hi < len(ys)-1 {
		hi++
	}
	if hi-lo+1 < 3 {
		return ActiveRegion{}, fmt.Errorf("model: active region too narrow (%d points)", hi-lo+1)
	}
	return ActiveRegion{Lo: lo, Hi: hi}, nil
}

// LogLinear is the fitted invertible model of Equation 2 for one metric:
// Metric(x) = A + B·ln(x), valid for x in [XMin, XMax] (the non-saturated
// zone it was fitted on).
type LogLinear struct {
	// A is the intercept (paper's a or α).
	A float64
	// B is the slope per natural-log unit of the parameter (paper's b or
	// β).
	B float64
	// R2 is the goodness of fit on the active region.
	R2 float64
	// XMin and XMax bound the validity range of the model.
	XMin, XMax float64
	// YMin and YMax are the metric values attained at the validity
	// bounds (ordered by value, not by x).
	YMin, YMax float64
}

// FitLogLinear detects the active region of the (xs, ys) series and fits
// metric = A + B·ln(x) on it. xs must be positive and strictly increasing.
func FitLogLinear(xs, ys []float64, tolFrac float64) (LogLinear, error) {
	if len(xs) != len(ys) {
		return LogLinear{}, fmt.Errorf("model: series length mismatch %d vs %d", len(xs), len(ys))
	}
	for i, x := range xs {
		if x <= 0 {
			return LogLinear{}, fmt.Errorf("model: non-positive x %v at %d", x, i)
		}
		if i > 0 && xs[i] <= xs[i-1] {
			return LogLinear{}, fmt.Errorf("model: xs not strictly increasing at %d", i)
		}
	}
	region, err := DetectActiveRegion(ys, tolFrac)
	if err != nil {
		return LogLinear{}, err
	}
	lx := make([]float64, 0, region.Width())
	ly := make([]float64, 0, region.Width())
	for i := region.Lo; i <= region.Hi; i++ {
		lx = append(lx, math.Log(xs[i]))
		ly = append(ly, ys[i])
	}
	fit, err := stat.FitLinear(lx, ly)
	if err != nil {
		return LogLinear{}, fmt.Errorf("model: fit: %w", err)
	}
	m := LogLinear{
		A: fit.Intercept, B: fit.Slope, R2: fit.R2,
		XMin: xs[region.Lo], XMax: xs[region.Hi],
	}
	y1, y2 := m.Predict(m.XMin), m.Predict(m.XMax)
	m.YMin, m.YMax = math.Min(y1, y2), math.Max(y1, y2)
	return m, nil
}

// Predict evaluates the model at parameter value x.
func (m LogLinear) Predict(x float64) float64 { return m.A + m.B*math.Log(x) }

// Invert returns the parameter value x at which the model predicts the
// metric value y. It errors on a (near) zero slope.
func (m LogLinear) Invert(y float64) (float64, error) {
	if math.Abs(m.B) < 1e-15 {
		return 0, fmt.Errorf("model: cannot invert zero-slope model")
	}
	return math.Exp((y - m.A) / m.B), nil
}

// ClampToValidity clamps x into the model's fitted validity range.
func (m LogLinear) ClampToValidity(x float64) float64 {
	return stat.Clamp(x, m.XMin, m.XMax)
}

// String implements fmt.Stringer in the notation of Equation 2.
func (m LogLinear) String() string {
	return fmt.Sprintf("y = %.3f + %.3f·ln(x)  (R²=%.3f, valid x∈[%.3g, %.3g])",
		m.A, m.B, m.R2, m.XMin, m.XMax)
}
