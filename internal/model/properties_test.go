package model

import (
	"testing"

	"repro/internal/rng"
)

func TestSelectPropertiesFindsDriver(t *testing.T) {
	// Property 0 drives the metric; property 1 is uncorrelated noise.
	r := rng.New(11)
	names := []string{"driver", "noise"}
	n := 200
	rows := make([][]float64, n)
	metric := make([]float64, n)
	for i := range rows {
		d := r.NormFloat64()
		rows[i] = []float64{d, r.NormFloat64()}
		metric[i] = 2*d + r.NormFloat64()*0.2
	}
	sel, err := SelectProperties(names, rows, metric, 0.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	selNames := sel.SelectedNames()
	if len(selNames) != 1 || selNames[0] != "driver" {
		t.Errorf("selected = %v, want [driver]", selNames)
	}
	if sel.Importance[0] <= 0 || sel.Importance[1] < 0 {
		t.Errorf("importance = %v", sel.Importance)
	}
}

func TestSelectPropertiesEmptyWhenNothingCorrelates(t *testing.T) {
	// The paper's GEO-I case: no property explains the metric → empty
	// selection.
	r := rng.New(13)
	names := []string{"p1", "p2", "p3"}
	n := 200
	rows := make([][]float64, n)
	metric := make([]float64, n)
	for i := range rows {
		rows[i] = []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		metric[i] = r.NormFloat64()
	}
	sel, err := SelectProperties(names, rows, metric, 0.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) != 0 {
		t.Errorf("selected = %v, want empty", sel.SelectedNames())
	}
}

func TestSelectPropertiesErrors(t *testing.T) {
	if _, err := SelectProperties([]string{"a"}, nil, nil, 0.2, 0.5); err == nil {
		t.Error("empty rows should error")
	}
	rows := [][]float64{{1, 2}, {3, 4}}
	if _, err := SelectProperties([]string{"a"}, rows, []float64{1, 2}, 0.2, 0.5); err == nil {
		t.Error("name/column mismatch should error")
	}
	if _, err := SelectProperties([]string{"a", "b"}, rows, []float64{1}, 0.2, 0.5); err == nil {
		t.Error("metric length mismatch should error")
	}
}

func TestSelectPropertiesConstantColumn(t *testing.T) {
	// A constant property must not crash and must never be selected.
	r := rng.New(17)
	names := []string{"const", "varies"}
	n := 100
	rows := make([][]float64, n)
	metric := make([]float64, n)
	for i := range rows {
		v := r.NormFloat64()
		rows[i] = []float64{5, v}
		metric[i] = v
	}
	sel, err := SelectProperties(names, rows, metric, 0.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range sel.SelectedNames() {
		if name == "const" {
			t.Error("constant property must not be selected")
		}
	}
}
