package model

import (
	"fmt"
	"math"

	"repro/internal/stat"
)

// Sigmoid is the four-parameter logistic alternative to Equation 2's
// log-linear model: Metric(x) = Lo + (Hi−Lo)/(1+exp(−K·(ln x − X0))). Where
// LogLinear is valid only inside the non-saturated zone, the sigmoid models
// the entire curve of Figure 1 — both plateaus and the transition — at the
// cost of no longer being the paper's closed form. The framework exposes
// both so a designer can trade simplicity against validity range (an
// ablation bench quantifies the difference).
type Sigmoid struct {
	// Fit is the underlying logistic fit over x' = ln(parameter).
	Fit stat.SigmoidFit
	// XMin and XMax bound the parameter range the model was fitted on.
	XMin, XMax float64
}

// FitSigmoidModel fits the logistic model to a metric-versus-parameter
// series. xs must be positive and strictly increasing.
func FitSigmoidModel(xs, ys []float64) (Sigmoid, error) {
	if len(xs) != len(ys) {
		return Sigmoid{}, fmt.Errorf("model: series length mismatch %d vs %d", len(xs), len(ys))
	}
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return Sigmoid{}, fmt.Errorf("model: non-positive x %v at %d", x, i)
		}
		if i > 0 && xs[i] <= xs[i-1] {
			return Sigmoid{}, fmt.Errorf("model: xs not strictly increasing at %d", i)
		}
		lx[i] = math.Log(x)
	}
	fit, err := stat.FitSigmoid(lx, ys)
	if err != nil {
		return Sigmoid{}, fmt.Errorf("model: sigmoid: %w", err)
	}
	return Sigmoid{Fit: fit, XMin: xs[0], XMax: xs[len(xs)-1]}, nil
}

// Predict evaluates the model at parameter value x.
func (m Sigmoid) Predict(x float64) float64 { return m.Fit.Predict(math.Log(x)) }

// Invert returns the parameter value at which the model predicts metric
// value y. It errors when y lies on a plateau (not invertible there).
func (m Sigmoid) Invert(y float64) (float64, error) {
	lx, err := m.Fit.InvertY(y)
	if err != nil {
		return 0, err
	}
	return math.Exp(lx), nil
}

// R2 returns the goodness of fit over the whole series.
func (m Sigmoid) R2() float64 { return m.Fit.R2 }

// String implements fmt.Stringer.
func (m Sigmoid) String() string {
	return fmt.Sprintf("y = %.3f + %.3f·logistic(%.3f·(ln x − %.3f))  (R²=%.3f, x∈[%.3g, %.3g])",
		m.Fit.Lo, m.Fit.Hi-m.Fit.Lo, m.Fit.K, m.Fit.X0, m.Fit.R2, m.XMin, m.XMax)
}

// sigmoidIntervalFor returns the parameter interval on which the sigmoid
// satisfies "metric ≤ bound" (upper true) or "metric ≥ bound" (upper
// false). Plateaus make the satisfied side unbounded.
func sigmoidIntervalFor(m Sigmoid, bound float64, upper bool) (lo, hi float64, err error) {
	const (
		negInf = math.SmallestNonzeroFloat64
		posInf = math.MaxFloat64
	)
	span := m.Fit.Hi - m.Fit.Lo
	if span == 0 || m.Fit.K == 0 {
		return 0, 0, fmt.Errorf("model: flat sigmoid cannot bound the metric")
	}
	increasing := m.Fit.K > 0

	// Bound beyond the asymptotes: satisfied everywhere or nowhere.
	if bound <= m.Fit.Lo {
		if upper {
			return 0, 0, fmt.Errorf("model: bound %v below the curve's reachable range [%v, %v]", bound, m.Fit.Lo, m.Fit.Hi)
		}
		return negInf, posInf, nil
	}
	if bound >= m.Fit.Hi {
		if upper {
			return negInf, posInf, nil
		}
		return 0, 0, fmt.Errorf("model: bound %v above the curve's reachable range [%v, %v]", bound, m.Fit.Lo, m.Fit.Hi)
	}

	x, err := m.Invert(bound)
	if err != nil {
		return 0, 0, err
	}
	// metric ≤ bound holds on the low-metric side of x.
	lowMetricOnLowX := increasing
	if upper == lowMetricOnLowX {
		return negInf, x, nil
	}
	return x, posInf, nil
}

// ConfigureSigmoid inverts a pair of fitted sigmoid models under the
// designer's objectives, the full-curve counterpart of Configure.
func ConfigureSigmoid(privacy, utility Sigmoid, obj Objectives) (Configuration, error) {
	if err := obj.Validate(); err != nil {
		return Configuration{}, err
	}
	pLo, pHi, err := sigmoidIntervalFor(privacy, obj.MaxPrivacy, true)
	if err != nil {
		return Configuration{}, fmt.Errorf("model: privacy objective: %w", err)
	}
	uLo, uHi, err := sigmoidIntervalFor(utility, obj.MinUtility, false)
	if err != nil {
		return Configuration{}, fmt.Errorf("model: utility objective: %w", err)
	}
	lo := math.Max(pLo, uLo)
	hi := math.Min(pHi, uHi)
	cfg := Configuration{Min: lo, Max: hi}
	if lo > hi {
		mid := math.Sqrt(lo * hi)
		cfg.Value = mid
		cfg.PredictedPrivacy = privacy.Predict(mid)
		cfg.PredictedUtility = utility.Predict(mid)
		return cfg, nil
	}
	cfg.Feasible = true
	// Keep the recommendation inside the jointly-sampled range; the
	// asymptote sides are unbounded but unexplored.
	vLo := math.Max(lo, math.Min(privacy.XMin, utility.XMin))
	vHi := math.Min(hi, math.Max(privacy.XMax, utility.XMax))
	if vLo > vHi {
		vLo, vHi = lo, hi
	}
	cfg.Value = math.Sqrt(vLo * vHi)
	cfg.PredictedPrivacy = privacy.Predict(cfg.Value)
	cfg.PredictedUtility = utility.Predict(cfg.Value)
	return cfg, nil
}
