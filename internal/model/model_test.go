package model

import (
	"math"
	"testing"

	"repro/internal/stat"
)

// sigmoidSeries builds a saturated-sigmoid series over log-spaced xs,
// mimicking a Figure-1 curve: plateau at lo for small x, plateau at hi for
// large x, log-linear in between around center.
func sigmoidSeries(lo, hi, center, widthNats float64, n int) (xs, ys []float64) {
	xs = stat.LogSpace(1e-4, 1, n)
	ys = make([]float64, n)
	for i, x := range xs {
		z := (math.Log(x) - math.Log(center)) / widthNats
		ys[i] = lo + (hi-lo)/(1+math.Exp(-z))
	}
	return xs, ys
}

func TestDetectActiveRegion(t *testing.T) {
	_, ys := sigmoidSeries(0, 1, 0.01, 0.5, 25)
	region, err := DetectActiveRegion(ys, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if region.Width() < 3 {
		t.Fatalf("region too narrow: %+v", region)
	}
	// The region must bracket the transition center (x=0.01 is index 12
	// on a 25-point grid over [1e-4, 1]).
	if region.Lo > 12 || region.Hi < 12 {
		t.Errorf("region %+v does not bracket the transition at index 12", region)
	}
	// And must exclude the deep plateaus.
	if region.Lo < 4 || region.Hi > 21 {
		t.Errorf("region %+v includes deep plateaus", region)
	}
}

func TestDetectActiveRegionErrors(t *testing.T) {
	if _, err := DetectActiveRegion([]float64{1, 2}, 0.05); err == nil {
		t.Error("too few points should error")
	}
	if _, err := DetectActiveRegion([]float64{1, 1, 1, 1}, 0.05); err == nil {
		t.Error("flat curve should error")
	}
	if _, err := DetectActiveRegion([]float64{0, 0.5, 1}, 0); err == nil {
		t.Error("zero tolFrac should error")
	}
	if _, err := DetectActiveRegion([]float64{0, 0.5, 1}, 0.5); err == nil {
		t.Error("tolFrac 0.5 should error")
	}
}

func TestDetectActiveRegionNoPlateau(t *testing.T) {
	// A curve active everywhere: region must cover (almost) everything.
	xs := stat.LogSpace(1e-4, 1, 20)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 0.1 * math.Log(x)
	}
	region, err := DetectActiveRegion(ys, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if region.Lo > 1 || region.Hi < len(ys)-2 {
		t.Errorf("fully-active curve region = %+v", region)
	}
}

func TestFitLogLinearRecoversEquation2(t *testing.T) {
	// Build a synthetic curve that follows the paper's Equation 2 exactly
	// in its active zone: Pr = 0.84 + 0.17·ln(ε), clipped to [0, 0.45].
	xs := stat.LogSpace(1e-4, 1, 41)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = stat.Clamp(0.84+0.17*math.Log(x), 0, 0.45)
	}
	m, err := FitLogLinear(xs, ys, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-0.84) > 0.06 || math.Abs(m.B-0.17) > 0.02 {
		t.Errorf("fit A=%v B=%v, want ~0.84, 0.17", m.A, m.B)
	}
	if m.R2 < 0.97 {
		t.Errorf("R² = %v", m.R2)
	}
	// Inversion must recover the paper's headline: Pr=0.1 at ε≈0.0129.
	eps, err := m.Invert(0.10)
	if err != nil {
		t.Fatal(err)
	}
	if eps < 0.008 || eps > 0.018 {
		t.Errorf("Invert(0.10) = %v, want ~0.013", eps)
	}
	if s := m.String(); s == "" {
		t.Error("String must be non-empty")
	}
}

func TestFitLogLinearErrors(t *testing.T) {
	xs := stat.LogSpace(1e-2, 1, 10)
	if _, err := FitLogLinear(xs, xs[:5], 0.05); err == nil {
		t.Error("length mismatch should error")
	}
	bad := append([]float64{-1}, xs[:9]...)
	ys := make([]float64, 10)
	for i := range ys {
		ys[i] = float64(i)
	}
	if _, err := FitLogLinear(bad, ys, 0.05); err == nil {
		t.Error("non-positive x should error")
	}
	nonMono := append([]float64{}, xs...)
	nonMono[3] = nonMono[2]
	if _, err := FitLogLinear(nonMono, ys, 0.05); err == nil {
		t.Error("non-increasing xs should error")
	}
	flat := make([]float64, 10)
	if _, err := FitLogLinear(xs, flat, 0.05); err == nil {
		t.Error("flat ys should error")
	}
}

func TestLogLinearPredictInvertRoundTrip(t *testing.T) {
	m := LogLinear{A: 1.21, B: 0.09, XMin: 1e-4, XMax: 1}
	for _, x := range []float64{1e-4, 1e-3, 1e-2, 0.5} {
		y := m.Predict(x)
		back, err := m.Invert(y)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(math.Log(back)-math.Log(x)) > 1e-9 {
			t.Errorf("round trip %v -> %v", x, back)
		}
	}
	zero := LogLinear{A: 1, B: 0}
	if _, err := zero.Invert(1); err == nil {
		t.Error("zero slope should not invert")
	}
}

func TestClampToValidity(t *testing.T) {
	m := LogLinear{XMin: 0.001, XMax: 0.1}
	if got := m.ClampToValidity(0.01); got != 0.01 {
		t.Errorf("inside value clamped: %v", got)
	}
	if got := m.ClampToValidity(1e-9); got != 0.001 {
		t.Errorf("low clamp = %v", got)
	}
	if got := m.ClampToValidity(5); got != 0.1 {
		t.Errorf("high clamp = %v", got)
	}
}
