package model

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestZipSweep(t *testing.T) {
	pts, err := ZipSweep([]float64{1, 2}, []float64{0.1, 0.2}, []float64{0.9, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1] != (SweepPoint{X: 2, Privacy: 0.2, Utility: 0.8}) {
		t.Errorf("ZipSweep = %+v", pts)
	}
	if _, err := ZipSweep([]float64{1}, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should fail")
	}
}

func TestParetoFrontRemovesDominated(t *testing.T) {
	pts := []SweepPoint{
		{X: 1, Privacy: 0.1, Utility: 0.5},
		{X: 2, Privacy: 0.2, Utility: 0.4}, // dominated by X=1
		{X: 3, Privacy: 0.3, Utility: 0.9},
		{X: 4, Privacy: 0.05, Utility: 0.3},
	}
	front := ParetoFront(pts)
	if len(front) != 3 {
		t.Fatalf("front = %+v, want 3 points", front)
	}
	for _, p := range front {
		if p.X == 2 {
			t.Error("dominated point survived")
		}
	}
	// Sorted by privacy.
	for i := 1; i < len(front); i++ {
		if front[i].Privacy < front[i-1].Privacy {
			t.Error("front not sorted by privacy")
		}
	}
}

func TestParetoFrontDropsDuplicates(t *testing.T) {
	pts := []SweepPoint{
		{X: 1, Privacy: 0.1, Utility: 0.5},
		{X: 2, Privacy: 0.1, Utility: 0.5},
	}
	front := ParetoFront(pts)
	if len(front) != 1 {
		t.Errorf("duplicates should collapse, got %+v", front)
	}
	if ParetoFront(nil) != nil {
		t.Error("empty input should return nil")
	}
}

func TestParetoFrontProperty(t *testing.T) {
	// Property: no front point is dominated by any input point, and every
	// input point is dominated by or equal to some front point.
	f := func(seed int64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(30)
		pts := make([]SweepPoint, n)
		for i := range pts {
			pts[i] = SweepPoint{X: float64(i), Privacy: float64(r.Intn(10)) / 10, Utility: float64(r.Intn(10)) / 10}
		}
		front := ParetoFront(pts)
		dominates := func(q, p SweepPoint) bool {
			return (q.Privacy < p.Privacy && q.Utility >= p.Utility) ||
				(q.Privacy <= p.Privacy && q.Utility > p.Utility)
		}
		for _, p := range front {
			for _, q := range pts {
				if dominates(q, p) {
					return false
				}
			}
		}
		for _, p := range pts {
			ok := false
			for _, q := range front {
				if q.Privacy == p.Privacy && q.Utility == p.Utility || dominates(q, p) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalWindow(t *testing.T) {
	pts := []SweepPoint{
		{X: 0.001, Privacy: 0.0, Utility: 0.3},
		{X: 0.005, Privacy: 0.02, Utility: 0.7},
		{X: 0.01, Privacy: 0.05, Utility: 0.85},
		{X: 0.02, Privacy: 0.3, Utility: 0.95},
		{X: 0.05, Privacy: 0.9, Utility: 1.0},
	}
	obj := Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}
	lo, hi, ok := EmpiricalWindow(pts, obj)
	if !ok {
		t.Fatal("expected a satisfying point")
	}
	if lo != 0.01 || hi != 0.01 {
		t.Errorf("window = [%v, %v], want [0.01, 0.01]", lo, hi)
	}
	if _, _, ok := EmpiricalWindow(pts, Objectives{MaxPrivacy: 0.01, MinUtility: 0.99}); ok {
		t.Error("impossible objectives should report no window")
	}
}

func TestKneePoint(t *testing.T) {
	front := []SweepPoint{
		{X: 1, Privacy: 0.0, Utility: 0.2},
		{X: 2, Privacy: 0.1, Utility: 0.8}, // balance 0.7: the knee
		{X: 3, Privacy: 0.6, Utility: 1.0},
	}
	knee, ok := KneePoint(front)
	if !ok || knee.X != 2 {
		t.Errorf("knee = %+v, ok=%v; want X=2", knee, ok)
	}
	if _, ok := KneePoint(nil); ok {
		t.Error("empty front should report no knee")
	}
}
