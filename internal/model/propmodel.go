package model

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
	"repro/internal/stat"
)

// PropertyModel realizes the full Equation 1, (Pr) = f(p, d1..dm): the
// per-user log-linear response Pr_u(x) = a_u + b_u·ln(x) whose coefficients
// are themselves linear in the user's dataset properties,
//
//	a_u = c0 + Σ_j cj·d_uj,   b_u = e0 + Σ_j ej·d_uj.
//
// Fitted on one population's per-user sweep outcomes, it predicts the
// response curve — hence the configuration — of a *new* user or dataset
// from its properties alone, without re-running the sweep. This is the
// paper's "dataset properties d_i enter the model" taken to its
// operational conclusion.
type PropertyModel struct {
	// PropertyNames label the d_j dimensions.
	PropertyNames []string
	// InterceptCoef and SlopeCoef hold [c0, c1..cm] and [e0, e1..em].
	InterceptCoef, SlopeCoef []float64
	// InterceptR2 and SlopeR2 score the two property regressions across
	// training users.
	InterceptR2, SlopeR2 float64
	// XMin and XMax bound the validity range inherited from training.
	XMin, XMax float64
	// Users is the number of training users.
	Users int
}

// FitPropertyModel fits the property-aware model. xs is the swept grid;
// perUser maps user → metric series over xs; props maps user → property
// vector (all the same length as names). The active region is detected on
// the population mean curve and shared by all users, so per-user fits are
// comparable. At least 3 users and 3 active-region points are required.
func FitPropertyModel(names []string, xs []float64, perUser map[string][]float64, props map[string][]float64, tolFrac float64) (*PropertyModel, error) {
	if len(perUser) < 3 {
		return nil, fmt.Errorf("model: property model needs ≥ 3 users, got %d", len(perUser))
	}
	users := make([]string, 0, len(perUser))
	for u := range perUser {
		if _, ok := props[u]; !ok {
			return nil, fmt.Errorf("model: user %q has metric series but no properties", u)
		}
		users = append(users, u)
	}
	sort.Strings(users)

	// Shared active region from the population mean curve.
	mean := make([]float64, len(xs))
	for _, u := range users {
		series := perUser[u]
		if len(series) != len(xs) {
			return nil, fmt.Errorf("model: user %q series has %d points, want %d", u, len(series), len(xs))
		}
		for i, v := range series {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(len(users))
	}
	region, err := DetectActiveRegion(mean, tolFrac)
	if err != nil {
		return nil, fmt.Errorf("model: property model active region: %w", err)
	}

	// Per-user log-linear coefficients over the shared region.
	lx := make([]float64, 0, region.Width())
	for i := region.Lo; i <= region.Hi; i++ {
		if xs[i] <= 0 {
			return nil, fmt.Errorf("model: non-positive x %v in active region", xs[i])
		}
		lx = append(lx, math.Log(xs[i]))
	}
	icepts := make([]float64, len(users))
	slopes := make([]float64, len(users))
	for ui, u := range users {
		ly := perUser[u][region.Lo : region.Hi+1]
		fit, err := stat.FitLinear(lx, ly)
		if err != nil {
			return nil, fmt.Errorf("model: user %q response fit: %w", u, err)
		}
		icepts[ui] = fit.Intercept
		slopes[ui] = fit.Slope
	}

	// Property regressions a_u ~ d_u and b_u ~ d_u by QR.
	m := len(names)
	design := linalg.NewMatrix(len(users), m+1)
	for ui, u := range users {
		v := props[u]
		if len(v) != m {
			return nil, fmt.Errorf("model: user %q has %d properties, want %d", u, len(v), m)
		}
		design.Set(ui, 0, 1)
		for j, pv := range v {
			design.Set(ui, j+1, pv)
		}
	}
	cI, err := linalg.SolveLeastSquares(design, icepts)
	if err != nil {
		return nil, fmt.Errorf("model: intercept property regression: %w", err)
	}
	cS, err := linalg.SolveLeastSquares(design, slopes)
	if err != nil {
		return nil, fmt.Errorf("model: slope property regression: %w", err)
	}
	pm := &PropertyModel{
		PropertyNames: append([]string(nil), names...),
		InterceptCoef: cI,
		SlopeCoef:     cS,
		XMin:          xs[region.Lo],
		XMax:          xs[region.Hi],
		Users:         len(users),
	}
	pm.InterceptR2 = regressionR2(design, cI, icepts)
	pm.SlopeR2 = regressionR2(design, cS, slopes)
	return pm, nil
}

// regressionR2 scores fitted coefficients against the observed responses.
func regressionR2(design *linalg.Matrix, coef, obs []float64) float64 {
	pred := design.MulVec(coef)
	mean := stat.Mean(obs)
	var ssRes, ssTot float64
	for i := range obs {
		d := obs[i] - pred[i]
		ssRes += d * d
		t := obs[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// CurveFor predicts the log-linear response of a user (or dataset, using
// mean properties) with the given property vector.
func (m *PropertyModel) CurveFor(props []float64) (LogLinear, error) {
	if len(props) != len(m.PropertyNames) {
		return LogLinear{}, fmt.Errorf("model: got %d properties, want %d", len(props), len(m.PropertyNames))
	}
	a := m.InterceptCoef[0]
	b := m.SlopeCoef[0]
	for j, v := range props {
		a += m.InterceptCoef[j+1] * v
		b += m.SlopeCoef[j+1] * v
	}
	ll := LogLinear{A: a, B: b, XMin: m.XMin, XMax: m.XMax}
	y1, y2 := ll.Predict(ll.XMin), ll.Predict(ll.XMax)
	ll.YMin, ll.YMax = math.Min(y1, y2), math.Max(y1, y2)
	return ll, nil
}

// MeanProperties averages per-user property vectors into a dataset-level
// vector for CurveFor.
func MeanProperties(props map[string][]float64) ([]float64, error) {
	if len(props) == 0 {
		return nil, fmt.Errorf("model: no property vectors")
	}
	var out []float64
	n := 0
	for _, v := range props {
		if out == nil {
			out = make([]float64, len(v))
		}
		if len(v) != len(out) {
			return nil, fmt.Errorf("model: ragged property vectors (%d vs %d)", len(v), len(out))
		}
		for j, pv := range v {
			out[j] += pv
		}
		n++
	}
	for j := range out {
		out[j] /= float64(n)
	}
	return out, nil
}
