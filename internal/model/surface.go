package model

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Surface is the two-parameter response model generalizing Equation 2:
//
//	Metric(x, y) = A + Bx·tx(x) + By·ty(y)
//
// where tx/ty are ln(·) for log-scaled parameters and identity otherwise.
// It is fitted over a factorial grid by QR least squares and supports the
// partial inversions a designer needs: "given the sampling period, which ε
// meets the objectives?" and the joint feasible-region map.
type Surface struct {
	// A is the intercept; Bx and By the per-axis slopes.
	A, Bx, By float64
	// R2 is the goodness of fit over the whole grid.
	R2 float64
	// XLog and YLog record the axis transforms used.
	XLog, YLog bool
	// XMin, XMax, YMin, YMax bound the fitted grid.
	XMin, XMax, YMin, YMax float64
}

// FitSurface fits the bilinear model to a factorial grid: z[yi][xi] is the
// metric mean at (xs[xi], ys[yi]). Log-scaled axes must be positive.
func FitSurface(xs, ys []float64, z [][]float64, xlog, ylog bool) (Surface, error) {
	if len(xs) < 2 || len(ys) < 2 {
		return Surface{}, fmt.Errorf("model: surface needs a ≥ 2×2 grid, got %d×%d", len(xs), len(ys))
	}
	if len(z) != len(ys) {
		return Surface{}, fmt.Errorf("model: surface has %d rows, want %d", len(z), len(ys))
	}
	tx, err := axisTransform(xs, xlog, "x")
	if err != nil {
		return Surface{}, err
	}
	ty, err := axisTransform(ys, ylog, "y")
	if err != nil {
		return Surface{}, err
	}
	n := len(xs) * len(ys)
	a := linalg.NewMatrix(n, 3)
	b := make([]float64, n)
	i := 0
	for yi := range ys {
		if len(z[yi]) != len(xs) {
			return Surface{}, fmt.Errorf("model: surface row %d has %d cells, want %d", yi, len(z[yi]), len(xs))
		}
		for xi := range xs {
			a.Set(i, 0, 1)
			a.Set(i, 1, tx[xi])
			a.Set(i, 2, ty[yi])
			b[i] = z[yi][xi]
			i++
		}
	}
	coef, err := linalg.SolveLeastSquares(a, b)
	if err != nil {
		return Surface{}, fmt.Errorf("model: surface fit: %w", err)
	}
	s := Surface{
		A: coef[0], Bx: coef[1], By: coef[2],
		XLog: xlog, YLog: ylog,
		XMin: xs[0], XMax: xs[len(xs)-1],
		YMin: ys[0], YMax: ys[len(ys)-1],
	}
	// R² over the grid.
	var mean float64
	for _, v := range b {
		mean += v
	}
	mean /= float64(n)
	var ssRes, ssTot float64
	i = 0
	for yi := range ys {
		for xi := range xs {
			d := z[yi][xi] - s.Predict(xs[xi], ys[yi])
			ssRes += d * d
			t := z[yi][xi] - mean
			ssTot += t * t
			i++
		}
	}
	if ssTot > 0 {
		s.R2 = 1 - ssRes/ssTot
	} else {
		s.R2 = 1
	}
	return s, nil
}

// axisTransform applies the axis transform and validates positivity for
// log axes.
func axisTransform(vs []float64, logScale bool, axis string) ([]float64, error) {
	out := make([]float64, len(vs))
	for i, v := range vs {
		if i > 0 && vs[i] <= vs[i-1] {
			return nil, fmt.Errorf("model: surface %s axis not strictly increasing at %d", axis, i)
		}
		if logScale {
			if v <= 0 {
				return nil, fmt.Errorf("model: surface log %s axis has non-positive value %v", axis, v)
			}
			out[i] = math.Log(v)
		} else {
			out[i] = v
		}
	}
	return out, nil
}

// Predict evaluates the surface at (x, y).
func (s Surface) Predict(x, y float64) float64 {
	return s.A + s.Bx*s.txv(x) + s.By*s.tyv(y)
}

func (s Surface) txv(x float64) float64 {
	if s.XLog {
		return math.Log(x)
	}
	return x
}

func (s Surface) tyv(y float64) float64 {
	if s.YLog {
		return math.Log(y)
	}
	return y
}

// InvertX solves Metric(x, y) = z for x with y held fixed — the partial
// inversion behind "given the other knob, configure this one".
func (s Surface) InvertX(z, y float64) (float64, error) {
	if math.Abs(s.Bx) < 1e-15 {
		return 0, fmt.Errorf("model: surface has zero x-slope, cannot invert")
	}
	t := (z - s.A - s.By*s.tyv(y)) / s.Bx
	if s.XLog {
		return math.Exp(t), nil
	}
	return t, nil
}

// String implements fmt.Stringer.
func (s Surface) String() string {
	fx, fy := "x", "y"
	if s.XLog {
		fx = "ln x"
	}
	if s.YLog {
		fy = "ln y"
	}
	return fmt.Sprintf("z = %.3f + %.3f·%s + %.3f·%s  (R²=%.3f)", s.A, s.Bx, fx, s.By, fy, s.R2)
}

// PairPoint is one grid cell of a two-parameter feasibility analysis.
type PairPoint struct {
	// X and Y are the parameter values.
	X, Y float64
	// Privacy and Utility are the measured means at the cell.
	Privacy, Utility float64
	// Feasible reports whether the cell satisfies the objectives.
	Feasible bool
}

// FeasiblePairs evaluates the objectives over a measured factorial grid
// (privacy[yi][xi], utility[yi][xi]) and returns every cell, flagged. best
// is the feasible cell maximizing utility − privacy; ok is false when no
// cell is feasible.
func FeasiblePairs(xs, ys []float64, privacy, utility [][]float64, obj Objectives) (cells []PairPoint, best PairPoint, ok bool) {
	for yi := range ys {
		for xi := range xs {
			p := PairPoint{
				X:       xs[xi],
				Y:       ys[yi],
				Privacy: privacy[yi][xi],
				Utility: utility[yi][xi],
			}
			p.Feasible = p.Privacy <= obj.MaxPrivacy && p.Utility >= obj.MinUtility
			cells = append(cells, p)
			if p.Feasible && (!ok || p.Utility-p.Privacy > best.Utility-best.Privacy) {
				best, ok = p, true
			}
		}
	}
	return cells, best, ok
}
