package model

import (
	"math"
	"testing"
)

// paperModels returns log-linear models with the paper's Equation 2
// constants: Pr = 0.84 + 0.17·ln(ε), Ut = 1.21 + 0.09·ln(ε).
func paperModels() (privacy, utility LogLinear) {
	privacy = LogLinear{A: 0.84, B: 0.17, XMin: 0.007, XMax: 0.08, YMin: 0, YMax: 0.45, R2: 1}
	utility = LogLinear{A: 1.21, B: 0.09, XMin: 1e-4, XMax: 1, YMin: 0.2, YMax: 1, R2: 1}
	return privacy, utility
}

func TestConfigureReproducesPaperHeadline(t *testing.T) {
	privacy, utility := paperModels()
	cfg, err := Configure(privacy, utility, Objectives{MaxPrivacy: 0.10, MinUtility: 0.80})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Feasible {
		t.Fatalf("paper objectives must be feasible: %+v", cfg)
	}
	// Paper: ε = 0.01 satisfies both; our recommendation must be in the
	// same decade and itself satisfy both objectives under the models.
	if cfg.Value < 0.003 || cfg.Value > 0.03 {
		t.Errorf("recommended ε = %v, want ~0.01", cfg.Value)
	}
	if cfg.PredictedPrivacy > 0.10+1e-9 {
		t.Errorf("predicted privacy %v violates objective", cfg.PredictedPrivacy)
	}
	if cfg.PredictedUtility < 0.80-1e-9 {
		t.Errorf("predicted utility %v violates objective", cfg.PredictedUtility)
	}
	// The paper recommends ε = 0.01 (rounding: its own constants give
	// Ut(0.01) = 0.7955). The feasible range must sit in that immediate
	// neighbourhood: ε ≈ [0.0105, 0.0129].
	if cfg.Min < 0.008 || cfg.Max > 0.016 {
		t.Errorf("feasible range [%v, %v], want ≈ [0.0105, 0.0129]", cfg.Min, cfg.Max)
	}
}

func TestConfigureInfeasible(t *testing.T) {
	privacy, utility := paperModels()
	// Demanding almost no leakage AND near-perfect utility cannot hold:
	// privacy wants tiny ε, utility wants large ε.
	cfg, err := Configure(privacy, utility, Objectives{MaxPrivacy: 0.01, MinUtility: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Feasible {
		t.Errorf("conflicting objectives reported feasible: %+v", cfg)
	}
	if cfg.Value <= 0 {
		t.Errorf("infeasible result should still carry a diagnostic value, got %v", cfg.Value)
	}
}

func TestConfigureLooseObjectives(t *testing.T) {
	privacy, utility := paperModels()
	// Very loose objectives: everything feasible; recommendation must
	// stay within model validity.
	cfg, err := Configure(privacy, utility, Objectives{MaxPrivacy: 0.99, MinUtility: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Feasible {
		t.Fatalf("loose objectives must be feasible")
	}
	if cfg.Value <= 0 || math.IsInf(cfg.Value, 0) || math.IsNaN(cfg.Value) {
		t.Errorf("unusable recommendation %v", cfg.Value)
	}
}

func TestConfigureZeroSlopeModels(t *testing.T) {
	flat := LogLinear{A: 0.5, B: 0}
	_, utility := paperModels()
	if _, err := Configure(flat, utility, Objectives{MaxPrivacy: 0.1, MinUtility: 0.8}); err == nil {
		t.Error("flat privacy model should error")
	}
	privacy, _ := paperModels()
	if _, err := Configure(privacy, flat, Objectives{MaxPrivacy: 0.1, MinUtility: 0.8}); err == nil {
		t.Error("flat utility model should error")
	}
}

func TestConfigureNaNObjectives(t *testing.T) {
	privacy, utility := paperModels()
	if _, err := Configure(privacy, utility, Objectives{MaxPrivacy: math.NaN(), MinUtility: 0.8}); err == nil {
		t.Error("NaN objective should error")
	}
}

func TestConfigureDecreasingPrivacyModel(t *testing.T) {
	// A privacy metric that *improves* (decreases) with the parameter —
	// e.g. cloaking cell size — must flip the interval direction.
	privacy := LogLinear{A: -0.5, B: -0.2, XMin: 10, XMax: 10000, R2: 1} // Pr falls with x
	utility := LogLinear{A: 2.0, B: -0.15, XMin: 10, XMax: 10000, R2: 1} // Ut falls with x
	cfg, err := Configure(privacy, utility, Objectives{MaxPrivacy: 0.2, MinUtility: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Feasible {
		t.Fatalf("should be feasible: %+v", cfg)
	}
	// Pr ≤ 0.2 needs x ≥ e^((0.2+0.5)/-0.2)... since B<0: x ≥ e^((0.2-(-0.5))/(-0.2)) is wrong side;
	// check the recommendation actually satisfies both predictions.
	if privacy.Predict(cfg.Value) > 0.2+1e-9 {
		t.Errorf("privacy objective violated at %v: %v", cfg.Value, privacy.Predict(cfg.Value))
	}
	if utility.Predict(cfg.Value) < 0.8-1e-9 {
		t.Errorf("utility objective violated at %v: %v", cfg.Value, utility.Predict(cfg.Value))
	}
}

func TestIntervalForPlateauExtension(t *testing.T) {
	privacy, _ := paperModels()
	// A bound above the model's top plateau is satisfied everywhere.
	lo, hi, err := intervalFor(privacy, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if lo > privacy.XMin || hi < privacy.XMax {
		t.Errorf("everywhere-satisfied bound gave [%v, %v]", lo, hi)
	}
}
