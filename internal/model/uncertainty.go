package model

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/stat"
)

// ConfigurationCI reports the uncertainty of a model-based recommendation:
// how much the recommended parameter value moves when the sweep's
// measurement noise is resampled. A wide interval tells the designer to
// sweep with more repeats before trusting the configuration — turning the
// framework's point answer into a calibrated one.
type ConfigurationCI struct {
	// Value is the percentile confidence interval of the recommended
	// parameter (percentiles taken in log space, the parameter's natural
	// scale).
	Value stat.CI
	// FeasibleFraction is the share of bootstrap replicates whose
	// objectives stayed feasible.
	FeasibleFraction float64
	// Replicates is the number of bootstrap replicates attempted.
	Replicates int
}

// BootstrapConfigure estimates a confidence interval for Configure's
// recommendation by residual-bootstrapping the two metric series: residuals
// of each base fit are resampled with replacement, added back onto the
// fitted curve inside the active zone, the models are refitted and
// re-inverted. Replicates whose refit fails or whose objectives become
// infeasible are counted in FeasibleFraction but contribute no value
// sample. level is the two-sided coverage in (0, 1).
func BootstrapConfigure(r *rng.Source, xs, privacy, utility []float64, tolFrac float64, obj Objectives, iters int, level float64) (ConfigurationCI, error) {
	if iters < 2 {
		return ConfigurationCI{}, fmt.Errorf("model: bootstrap needs ≥ 2 iterations, got %d", iters)
	}
	if level <= 0 || level >= 1 {
		return ConfigurationCI{}, fmt.Errorf("model: bootstrap level must be in (0,1), got %v", level)
	}
	pBase, err := FitLogLinear(xs, privacy, tolFrac)
	if err != nil {
		return ConfigurationCI{}, fmt.Errorf("model: bootstrap base privacy fit: %w", err)
	}
	uBase, err := FitLogLinear(xs, utility, tolFrac)
	if err != nil {
		return ConfigurationCI{}, fmt.Errorf("model: bootstrap base utility fit: %w", err)
	}
	base, err := Configure(pBase, uBase, obj)
	if err != nil {
		return ConfigurationCI{}, err
	}
	if !base.Feasible {
		return ConfigurationCI{}, fmt.Errorf("model: objectives infeasible at the point estimate; bootstrap CI undefined")
	}

	pRes := residuals(xs, privacy, pBase)
	uRes := residuals(xs, utility, uBase)
	var logValues []float64
	feasible := 0
	for it := 0; it < iters; it++ {
		bp := perturb(xs, privacy, pBase, pRes, r)
		bu := perturb(xs, utility, uBase, uRes, r)
		pFit, err1 := FitLogLinear(xs, bp, tolFrac)
		uFit, err2 := FitLogLinear(xs, bu, tolFrac)
		if err1 != nil || err2 != nil {
			continue
		}
		cfg, err := Configure(pFit, uFit, obj)
		if err != nil || !cfg.Feasible {
			continue
		}
		feasible++
		logValues = append(logValues, math.Log(cfg.Value))
	}
	out := ConfigurationCI{
		FeasibleFraction: float64(feasible) / float64(iters),
		Replicates:       iters,
	}
	if len(logValues) < 2 {
		return ConfigurationCI{}, fmt.Errorf("model: only %d feasible bootstrap replicates; increase repeats or relax objectives", len(logValues))
	}
	sort.Float64s(logValues)
	alpha := (1 - level) / 2
	out.Value = stat.CI{
		Point: base.Value,
		Lo:    math.Exp(quantileSorted(logValues, alpha)),
		Hi:    math.Exp(quantileSorted(logValues, 1-alpha)),
		Level: level,
	}
	return out, nil
}

// residuals returns observed − fitted inside the model's validity range
// (the active zone); outside it the curve is saturated and the log-linear
// model intentionally does not describe it.
func residuals(xs, ys []float64, m LogLinear) []float64 {
	var res []float64
	for i, x := range xs {
		if x < m.XMin || x > m.XMax {
			continue
		}
		res = append(res, ys[i]-m.Predict(x))
	}
	return res
}

// perturb rebuilds a series: inside the active zone, fitted value plus a
// resampled residual; outside it, the original (saturated) observation.
func perturb(xs, ys []float64, m LogLinear, res []float64, r *rng.Source) []float64 {
	out := make([]float64, len(ys))
	for i, x := range xs {
		if x < m.XMin || x > m.XMax || len(res) == 0 {
			out[i] = ys[i]
			continue
		}
		out[i] = m.Predict(x) + res[r.Intn(len(res))]
	}
	return out
}

// quantileSorted returns the q-quantile of a sorted slice by linear
// interpolation.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
