package model

import (
	"math"
	"testing"

	"repro/internal/stat"
)

// logisticSeries samples a logistic curve in parameter space: the metric
// transitions around x = 0.01 over roughly one decade.
func logisticSeries(lo, hi, k, x0 float64, n int) (xs, ys []float64) {
	xs = stat.LogSpace(1e-4, 1, n)
	ys = make([]float64, n)
	for i, x := range xs {
		ys[i] = lo + (hi-lo)/(1+math.Exp(-k*(math.Log(x)-math.Log(x0))))
	}
	return xs, ys
}

func TestFitSigmoidModelRecoversMidpoint(t *testing.T) {
	xs, ys := logisticSeries(0, 1, 2, 0.01, 25)
	m, err := FitSigmoidModel(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := m.Invert(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if mid < 0.007 || mid > 0.014 {
		t.Errorf("midpoint inverted at %v, want ≈ 0.01", mid)
	}
	if m.R2() < 0.99 {
		t.Errorf("R² = %v on noiseless sigmoid, want ≈ 1", m.R2())
	}
}

func TestFitSigmoidModelInputValidation(t *testing.T) {
	if _, err := FitSigmoidModel([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FitSigmoidModel([]float64{-1, 1, 2, 3}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("non-positive x should fail")
	}
	if _, err := FitSigmoidModel([]float64{1, 1, 2, 3}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("non-increasing x should fail")
	}
}

func TestSigmoidPredictInvertRoundTrip(t *testing.T) {
	xs, ys := logisticSeries(0.1, 0.9, 1.5, 0.02, 31)
	m, err := FitSigmoidModel(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.005, 0.02, 0.08} {
		y := m.Predict(x)
		back, err := m.Invert(y)
		if err != nil {
			t.Fatalf("Invert(%v): %v", y, err)
		}
		if math.Abs(math.Log(back)-math.Log(x)) > 1e-9 {
			t.Errorf("round trip %v → %v → %v", x, y, back)
		}
	}
	if _, err := m.Invert(0.05); err == nil {
		t.Error("inverting below the lower plateau should fail")
	}
}

func TestConfigureSigmoidMatchesPaperStructure(t *testing.T) {
	// Privacy transitions fast around 0.02; utility slowly around 0.002:
	// feasible window in between, like Figure 1.
	xs, prs := logisticSeries(0, 1, 4, 0.02, 25)
	_, uts := logisticSeries(0.1, 1, 1, 0.002, 25)
	pm, err := FitSigmoidModel(xs, prs)
	if err != nil {
		t.Fatal(err)
	}
	um, err := FitSigmoidModel(xs, uts)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ConfigureSigmoid(pm, um, Objectives{MaxPrivacy: 0.10, MinUtility: 0.80})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Feasible {
		t.Fatalf("expected a feasible window, got %+v", cfg)
	}
	if cfg.PredictedPrivacy > 0.10+1e-6 {
		t.Errorf("predicted privacy %v violates the bound", cfg.PredictedPrivacy)
	}
	if cfg.PredictedUtility < 0.80-1e-6 {
		t.Errorf("predicted utility %v violates the bound", cfg.PredictedUtility)
	}
	if cfg.Value < cfg.Min || cfg.Value > cfg.Max {
		t.Errorf("recommendation %v outside feasible [%v, %v]", cfg.Value, cfg.Min, cfg.Max)
	}
}

func TestConfigureSigmoidInfeasible(t *testing.T) {
	// Both metrics transition at the same spot: wanting privacy ≤ 0.05
	// and utility ≥ 0.95 from the same curve is impossible.
	xs, prs := logisticSeries(0, 1, 4, 0.01, 25)
	uts := make([]float64, len(prs))
	copy(uts, prs)
	pm, err := FitSigmoidModel(xs, prs)
	if err != nil {
		t.Fatal(err)
	}
	um, err := FitSigmoidModel(xs, uts)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ConfigureSigmoid(pm, um, Objectives{MaxPrivacy: 0.05, MinUtility: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Feasible {
		t.Errorf("conflicting objectives reported feasible: %+v", cfg)
	}
}

func TestConfigureSigmoidPlateauBounds(t *testing.T) {
	xs, prs := logisticSeries(0, 0.4, 4, 0.02, 25)
	_, uts := logisticSeries(0.1, 1, 1, 0.002, 25)
	pm, err := FitSigmoidModel(xs, prs)
	if err != nil {
		t.Fatal(err)
	}
	um, err := FitSigmoidModel(xs, uts)
	if err != nil {
		t.Fatal(err)
	}
	// MaxPrivacy above the privacy curve's upper plateau: any ε
	// satisfies it; feasibility then rests on utility alone.
	cfg, err := ConfigureSigmoid(pm, um, Objectives{MaxPrivacy: 0.9, MinUtility: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Feasible {
		t.Error("trivially-satisfiable privacy bound should be feasible")
	}
	// MinUtility above the utility curve's upper plateau: unreachable.
	if _, err := ConfigureSigmoid(pm, um, Objectives{MaxPrivacy: 0.9, MinUtility: 1.5}); err == nil {
		t.Error("utility bound above the reachable range should error")
	}
}
