package model

import (
	"fmt"
	"math"
)

// Objectives are the designer's expectations (paper §2): leak at most
// MaxPrivacy of the POIs and keep utility at least MinUtility. With the
// default metrics both are fractions in [0, 1].
type Objectives struct {
	// MaxPrivacy is the upper bound on the privacy metric (lower metric =
	// more private; the paper uses 0.10).
	MaxPrivacy float64
	// MinUtility is the lower bound on the utility metric (the paper
	// uses 0.80).
	MinUtility float64
}

// Validate reports objective errors.
func (o Objectives) Validate() error {
	if math.IsNaN(o.MaxPrivacy) || math.IsNaN(o.MinUtility) {
		return fmt.Errorf("model: objectives must be numbers")
	}
	return nil
}

// Configuration is the framework's output (step 3): the parameter value to
// configure the LPPM with, the whole feasible range, and the model's
// predictions at the recommendation.
type Configuration struct {
	// Feasible is false when no parameter value satisfies both
	// objectives; the remaining fields then describe the conflict.
	Feasible bool
	// Value is the recommended parameter value (geometric midpoint of
	// the feasible range).
	Value float64
	// Min and Max bound the feasible parameter range.
	Min, Max float64
	// PredictedPrivacy and PredictedUtility evaluate the two models at
	// Value.
	PredictedPrivacy, PredictedUtility float64
}

// intervalFor returns the parameter interval on which the fitted model
// satisfies "metric ≤ bound" (when upper is true) or "metric ≥ bound"
// (when upper is false), intersected with the model's validity range —
// extended to its saturated plateaus: outside the active zone the metric
// stays at its plateau value, so a plateau that already satisfies the bound
// keeps satisfying it arbitrarily far on that side.
func intervalFor(m LogLinear, bound float64, upper bool) (lo, hi float64, err error) {
	const (
		negInf = math.SmallestNonzeroFloat64
		posInf = math.MaxFloat64
	)
	if math.Abs(m.B) < 1e-15 {
		return 0, 0, fmt.Errorf("model: zero-slope model cannot bound the metric")
	}
	x, err := m.Invert(bound)
	if err != nil {
		return 0, 0, err
	}
	// Metric increases with x when B > 0.
	increasing := m.B > 0
	metricLowSide := increasing // low x side has low metric when increasing

	switch {
	case upper && metricLowSide, !upper && !metricLowSide:
		// Satisfied for x ≤ threshold.
		lo, hi = negInf, math.Min(x, m.XMax)
		if x > m.XMax {
			hi = posInf // bound met across the whole valid range and beyond
		}
	default:
		// Satisfied for x ≥ threshold.
		lo, hi = math.Max(x, m.XMin), posInf
		if x < m.XMin {
			lo = negInf
		}
	}
	if lo > hi {
		return 0, 0, fmt.Errorf("model: empty satisfying interval")
	}
	return lo, hi, nil
}

// Configure inverts the fitted privacy and utility models to find the
// parameter values meeting both objectives, mirroring the paper's GEO-I
// walkthrough: privacy ≤ MaxPrivacy gives one bound on ε, utility ≥
// MinUtility the other; the recommendation is the geometric midpoint of the
// intersection.
func Configure(privacy, utility LogLinear, obj Objectives) (Configuration, error) {
	if err := obj.Validate(); err != nil {
		return Configuration{}, err
	}
	pLo, pHi, err := intervalFor(privacy, obj.MaxPrivacy, true)
	if err != nil {
		return Configuration{}, fmt.Errorf("model: privacy objective: %w", err)
	}
	uLo, uHi, err := intervalFor(utility, obj.MinUtility, false)
	if err != nil {
		return Configuration{}, fmt.Errorf("model: utility objective: %w", err)
	}

	lo := math.Max(pLo, uLo)
	hi := math.Min(pHi, uHi)
	cfg := Configuration{Min: lo, Max: hi}
	if lo > hi {
		// Infeasible: report the least-bad midpoint between the two
		// conflicting thresholds for diagnosis.
		mid := math.Sqrt(lo * hi)
		cfg.Value = mid
		cfg.PredictedPrivacy = predictSaturated(privacy, mid)
		cfg.PredictedUtility = predictSaturated(utility, mid)
		return cfg, nil
	}

	cfg.Feasible = true
	// Clamp the unbounded sides into the joint validity range before
	// taking the midpoint, so the recommendation stays where the models
	// are trustworthy.
	vLo := math.Max(lo, math.Min(privacy.XMin, utility.XMin))
	vHi := math.Min(hi, math.Max(privacy.XMax, utility.XMax))
	if vLo > vHi {
		vLo, vHi = lo, hi
	}
	cfg.Value = math.Sqrt(vLo * vHi)
	cfg.PredictedPrivacy = predictSaturated(privacy, cfg.Value)
	cfg.PredictedUtility = predictSaturated(utility, cfg.Value)
	return cfg, nil
}

// predictSaturated evaluates the model and clamps the prediction to the
// plateau values attained at the edges of the active zone: outside that zone
// the real metric saturates, so the raw log-linear extrapolation would be
// misleading (e.g. negative POI fractions).
func predictSaturated(m LogLinear, x float64) float64 {
	y := m.Predict(x)
	if m.YMax > m.YMin {
		return math.Min(math.Max(y, m.YMin), m.YMax)
	}
	return y
}
