package model

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stat"
)

// mkPropertyPopulation synthesizes a population whose per-user response
// curves depend linearly on two properties: Pr_u(x) = (c0 + c1·d1 + c2·d2)
// + (e0 + e1·d1)·ln(x), saturated into [0, 1].
func mkPropertyPopulation(users int, noise float64, seed int64) (xs []float64, perUser, props map[string][]float64) {
	r := rng.New(seed)
	xs = stat.LogSpace(1e-4, 1, 21)
	perUser = make(map[string][]float64, users)
	props = make(map[string][]float64, users)
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("u%02d", i)
		d1 := r.Float64()       // e.g. normalized dwell fraction
		d2 := r.Float64() * 0.5 // e.g. normalized sampling period
		a := 2.2 + 0.8*d1 - 0.4*d2
		b := 0.35 + 0.15*d1
		series := make([]float64, len(xs))
		for j, x := range xs {
			series[j] = stat.Clamp(a+b*math.Log(x)+noise*r.NormFloat64(), 0, 1)
		}
		perUser[u] = series
		props[u] = []float64{d1, d2}
	}
	return xs, perUser, props
}

func TestFitPropertyModelRecoversStructure(t *testing.T) {
	xs, perUser, props := mkPropertyPopulation(30, 0.01, 1)
	pm, err := FitPropertyModel([]string{"dwell", "period"}, xs, perUser, props, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Users != 30 {
		t.Errorf("Users = %d, want 30", pm.Users)
	}
	// Property 1 raises the intercept (positive coefficient), property 2
	// lowers it.
	if pm.InterceptCoef[1] <= 0 {
		t.Errorf("dwell intercept coefficient = %v, want > 0", pm.InterceptCoef[1])
	}
	if pm.InterceptCoef[2] >= 0 {
		t.Errorf("period intercept coefficient = %v, want < 0", pm.InterceptCoef[2])
	}
	if pm.InterceptR2 < 0.8 || pm.SlopeR2 < 0.5 {
		t.Errorf("property regressions weak: intercept R²=%v slope R²=%v", pm.InterceptR2, pm.SlopeR2)
	}
}

func TestPropertyModelPredictsHeldOutUser(t *testing.T) {
	xs, perUser, props := mkPropertyPopulation(31, 0.01, 2)
	// Hold out one user; train on the rest.
	const holdOut = "u30"
	heldSeries := perUser[holdOut]
	heldProps := props[holdOut]
	delete(perUser, holdOut)
	delete(props, holdOut)

	pm, err := FitPropertyModel([]string{"dwell", "period"}, xs, perUser, props, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := pm.CurveFor(heldProps)
	if err != nil {
		t.Fatal(err)
	}
	// Compare prediction to the held-out user's own fit over the model's
	// validity range.
	// The observed series is clamped into [0, 1]; clamp the prediction
	// the same way before comparing.
	var sumAbs float64
	n := 0
	for i, x := range xs {
		if x < pm.XMin || x > pm.XMax {
			continue
		}
		pred := stat.Clamp(curve.Predict(x), 0, 1)
		sumAbs += math.Abs(pred - heldSeries[i])
		n++
	}
	if mae := sumAbs / float64(n); mae > 0.08 {
		t.Errorf("held-out mean absolute error = %v, want ≤ 0.08", mae)
	}
}

func TestPropertyModelConfigurationTransfers(t *testing.T) {
	// The operational claim: inverting the predicted curve gives a valid
	// configuration for a user never swept.
	xs, perUser, props := mkPropertyPopulation(30, 0.005, 3)
	pm, err := FitPropertyModel([]string{"dwell", "period"}, xs, perUser, props, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// A high-dwell user needs a smaller ε for the same leakage bound
	// than a low-dwell one (dwell raises the intercept).
	hi, err := pm.CurveFor([]float64{0.9, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := pm.CurveFor([]float64{0.1, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	epsHi, err := hi.Invert(0.10)
	if err != nil {
		t.Fatal(err)
	}
	epsLo, err := lo.Invert(0.10)
	if err != nil {
		t.Fatal(err)
	}
	if epsHi >= epsLo {
		t.Errorf("high-dwell user got ε=%v, low-dwell ε=%v; want high-dwell smaller", epsHi, epsLo)
	}
}

func TestFitPropertyModelErrors(t *testing.T) {
	xs, perUser, props := mkPropertyPopulation(5, 0.01, 4)
	if _, err := FitPropertyModel([]string{"a", "b"}, xs, map[string][]float64{"u": perUser["u00"]}, props, 0.05); err == nil {
		t.Error("too few users should fail")
	}
	// Missing properties for a user.
	broken := map[string][]float64{}
	for u, s := range perUser {
		broken[u] = s
	}
	badProps := map[string][]float64{}
	for u, v := range props {
		if u != "u00" {
			badProps[u] = v
		}
	}
	if _, err := FitPropertyModel([]string{"a", "b"}, xs, broken, badProps, 0.05); err == nil {
		t.Error("missing property vector should fail")
	}
	// Ragged series.
	ragged := map[string][]float64{}
	for u, s := range perUser {
		ragged[u] = s
	}
	for u := range ragged {
		ragged[u] = ragged[u][:3]
		break
	}
	if _, err := FitPropertyModel([]string{"a", "b"}, xs, ragged, props, 0.05); err == nil {
		t.Error("ragged series should fail")
	}
	// Wrong property dimension.
	pm, err := FitPropertyModel([]string{"a", "b"}, xs, perUser, props, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pm.CurveFor([]float64{1}); err == nil {
		t.Error("wrong property dimension should fail")
	}
}

func TestMeanProperties(t *testing.T) {
	props := map[string][]float64{
		"a": {1, 4},
		"b": {3, 0},
	}
	mean, err := MeanProperties(props)
	if err != nil {
		t.Fatal(err)
	}
	if mean[0] != 2 || mean[1] != 2 {
		t.Errorf("mean = %v, want [2 2]", mean)
	}
	if _, err := MeanProperties(nil); err == nil {
		t.Error("empty map should fail")
	}
	props["c"] = []float64{1}
	if _, err := MeanProperties(props); err == nil {
		t.Error("ragged vectors should fail")
	}
}
