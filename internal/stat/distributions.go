package stat

import (
	"math"

	"repro/internal/rng"
)

// SampleLaplace1D draws from the one-dimensional Laplace distribution with
// location 0 and scale b, by inverse-CDF sampling.
func SampleLaplace1D(r *rng.Source, b float64) float64 {
	u := r.Float64() - 0.5
	if u >= 0 {
		return -b * math.Log(1-2*u)
	}
	return b * math.Log(1+2*u)
}

// SamplePlanarLaplace draws a noise vector (east, north) in meters from the
// planar (polar) Laplace distribution with parameter epsilon in meters⁻¹,
// the noise distribution of Geo-Indistinguishability (Andrés et al., CCS'13,
// Algorithm "planar Laplacian"): the angle is uniform and the radius follows
// the Gamma(2, 1/ε)-shaped density εr·e^(−εr), sampled exactly through the
// Lambert W₋₁ inverse CDF.
func SamplePlanarLaplace(r *rng.Source, epsilon float64) (east, north float64) {
	theta := r.Float64() * 2 * math.Pi
	p := r.Float64()
	radius, err := PlanarLaplaceRadiusQuantile(epsilon, p)
	if err != nil {
		// Unreachable for epsilon > 0 and p in [0,1); keep the draw
		// well-defined anyway.
		radius = 0
	}
	sin, cos := math.Sincos(theta)
	return radius * cos, radius * sin
}

// PlanarLaplaceMeanRadius returns the expected displacement E[r] = 2/ε of
// planar Laplace noise with parameter epsilon.
func PlanarLaplaceMeanRadius(epsilon float64) float64 { return 2 / epsilon }

// SampleGaussian2D draws an isotropic Gaussian noise vector with the given
// standard deviation per axis, in meters.
func SampleGaussian2D(r *rng.Source, sigma float64) (east, north float64) {
	return r.NormFloat64() * sigma, r.NormFloat64() * sigma
}

// SampleExponential draws from the exponential distribution with the given
// mean.
func SampleExponential(r *rng.Source, mean float64) float64 {
	return r.ExpFloat64() * mean
}

// SampleUniformRange draws uniformly from [lo, hi].
func SampleUniformRange(r *rng.Source, lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// SampleTruncGaussian draws from a Gaussian with the given mean and standard
// deviation, rejected into [lo, hi]. After 64 rejections it clamps, which
// only matters for pathological bounds.
func SampleTruncGaussian(r *rng.Source, mean, sigma, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		v := mean + r.NormFloat64()*sigma
		if v >= lo && v <= hi {
			return v
		}
	}
	return Clamp(mean, lo, hi)
}
