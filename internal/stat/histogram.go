package stat

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the range
// are clamped into the first/last bin so that no observation is silently
// dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stat: histogram needs >= 1 bin, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stat: histogram bounds [%v, %v) are empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	idx := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Entropy returns the Shannon entropy (nats) of the empirical bin
// distribution. A flat distribution maximizes it at ln(bins).
func (h *Histogram) Entropy() float64 {
	if h.total == 0 {
		return 0
	}
	var e float64
	for _, c := range h.Counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(h.total)
		e -= p * math.Log(p)
	}
	return e
}

// NormalizedEntropy returns Entropy / ln(bins) in [0, 1]; it is 0 for a
// single bin.
func (h *Histogram) NormalizedEntropy() float64 {
	if len(h.Counts) <= 1 {
		return 0
	}
	return h.Entropy() / math.Log(float64(len(h.Counts)))
}

// EntropyOfCounts returns the Shannon entropy (nats) of an arbitrary count
// multiset, e.g. visits per spatial cell.
func EntropyOfCounts(counts []int) float64 {
	var total int
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var e float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		e -= p * math.Log(p)
	}
	return e
}

// LogSpace returns n values logarithmically spaced from lo to hi inclusive.
// It is the grid the paper sweeps ε over (10⁻⁴ … 10⁰). It panics if lo or
// hi are not positive or n < 2.
func LogSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		panic(fmt.Sprintf("stat: LogSpace needs positive bounds, got [%v, %v]", lo, hi))
	}
	if n < 2 {
		panic(fmt.Sprintf("stat: LogSpace needs n >= 2, got %d", n))
	}
	out := make([]float64, n)
	llo, lhi := math.Log10(lo), math.Log10(hi)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		out[i] = math.Pow(10, llo+f*(lhi-llo))
	}
	// Pin the endpoints exactly: rounding drift (e.g. 5000.000000000005)
	// would otherwise fail strict parameter-range validation.
	out[0], out[n-1] = lo, hi
	return out
}

// LinSpace returns n values linearly spaced from lo to hi inclusive.
func LinSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic(fmt.Sprintf("stat: LinSpace needs n >= 2, got %d", n))
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		out[i] = lo + f*(hi-lo)
	}
	return out
}
