package stat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestResamplePreservesLengthAndSupport(t *testing.T) {
	r := rng.New(1)
	xs := []float64{1, 2, 3, 4, 5}
	support := map[float64]bool{1: true, 2: true, 3: true, 4: true, 5: true}
	for trial := 0; trial < 50; trial++ {
		rs := Resample(r, xs)
		if len(rs) != len(xs) {
			t.Fatalf("resample length %d, want %d", len(rs), len(xs))
		}
		for _, v := range rs {
			if !support[v] {
				t.Fatalf("resample produced %v, not in original sample", v)
			}
		}
	}
}

func TestBootstrapMeanCoversTruth(t *testing.T) {
	r := rng.New(7)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + r.NormFloat64()
	}
	ci, err := Bootstrap(rng.New(8), xs, Mean, 500, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(Mean(xs)) {
		t.Errorf("CI %v does not contain the point estimate %v", ci, Mean(xs))
	}
	if !ci.Contains(10) {
		t.Errorf("CI %v does not contain the true mean 10 (flaky only if the sampler broke)", ci)
	}
	if ci.Width() <= 0 || ci.Width() > 1 {
		t.Errorf("CI width %v implausible for n=200, σ=1", ci.Width())
	}
}

func TestBootstrapErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := Bootstrap(r, nil, Mean, 100, 0.95); err == nil {
		t.Error("want error for empty sample")
	}
	if _, err := Bootstrap(r, []float64{1, 2}, Mean, 1, 0.95); err == nil {
		t.Error("want error for too few iterations")
	}
	if _, err := Bootstrap(r, []float64{1, 2}, Mean, 100, 1.5); err == nil {
		t.Error("want error for level outside (0,1)")
	}
}

func TestBootstrapConstantSampleDegenerateCI(t *testing.T) {
	xs := []float64{3, 3, 3, 3}
	ci, err := Bootstrap(rng.New(2), xs, Mean, 100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo != 3 || ci.Hi != 3 || ci.Point != 3 {
		t.Errorf("constant sample should give degenerate CI at 3, got %v", ci)
	}
}

func TestPairedBootstrapLinearRecoversLine(t *testing.T) {
	r := rng.New(11)
	n := 100
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) / 10
		ys[i] = 2 + 3*xs[i] + 0.1*r.NormFloat64()
	}
	icept, slope, err := PairedBootstrapLinear(rng.New(12), xs, ys, 300, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !icept.Contains(2) {
		t.Errorf("intercept CI %v does not contain 2", icept)
	}
	if !slope.Contains(3) {
		t.Errorf("slope CI %v does not contain 3", slope)
	}
	if slope.Width() > 0.2 {
		t.Errorf("slope CI suspiciously wide: %v", slope)
	}
}

func TestPairedBootstrapLinearErrors(t *testing.T) {
	r := rng.New(1)
	if _, _, err := PairedBootstrapLinear(r, []float64{1}, []float64{1, 2}, 10, 0.9); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, _, err := PairedBootstrapLinear(r, []float64{1, 1, 1}, []float64{1, 2, 3}, 10, 0.9); err == nil {
		t.Error("want error for degenerate x")
	}
	if _, _, err := PairedBootstrapLinear(r, []float64{1, 2, 3}, []float64{1, 2, 3}, 1, 0.9); err == nil {
		t.Error("want error for too few iterations")
	}
	if _, _, err := PairedBootstrapLinear(r, []float64{1, 2, 3}, []float64{1, 2, 3}, 10, 0); err == nil {
		t.Error("want error for bad level")
	}
}

func TestBootstrapCIOrderProperty(t *testing.T) {
	// Property: for any sample, Lo ≤ Point' bootstrap quantiles are
	// ordered (Lo ≤ Hi) and the point estimate is the plain statistic.
	f := func(seed int64, raw []uint8) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, b := range raw {
			xs[i] = float64(b)
		}
		ci, err := Bootstrap(rng.New(seed), xs, Median, 50, 0.9)
		if err != nil {
			return false
		}
		return ci.Lo <= ci.Hi && ci.Point == Median(xs) && !math.IsNaN(ci.Lo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
