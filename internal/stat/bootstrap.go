package stat

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	// Point is the statistic computed on the original sample.
	Point float64
	// Lo and Hi are the percentile bounds of the bootstrap distribution.
	Lo, Hi float64
	// Level is the nominal coverage (e.g. 0.95).
	Level float64
}

// Contains reports whether v lies within the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// Width returns the interval width.
func (c CI) Width() float64 { return c.Hi - c.Lo }

// String implements fmt.Stringer.
func (c CI) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g] @%.0f%%", c.Point, c.Lo, c.Hi, c.Level*100)
}

// Resample draws len(xs) values from xs with replacement.
func Resample(r *rng.Source, xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i := range out {
		out[i] = xs[r.Intn(len(xs))]
	}
	return out
}

// Bootstrap estimates a percentile confidence interval for an arbitrary
// statistic of xs by resampling with replacement iters times. level is the
// nominal two-sided coverage in (0, 1).
func Bootstrap(r *rng.Source, xs []float64, statistic func([]float64) float64, iters int, level float64) (CI, error) {
	if len(xs) == 0 {
		return CI{}, fmt.Errorf("stat: bootstrap needs a non-empty sample")
	}
	if iters < 2 {
		return CI{}, fmt.Errorf("stat: bootstrap needs at least 2 iterations, got %d", iters)
	}
	if level <= 0 || level >= 1 {
		return CI{}, fmt.Errorf("stat: bootstrap level must be in (0,1), got %v", level)
	}
	reps := make([]float64, iters)
	for i := range reps {
		reps[i] = statistic(Resample(r, xs))
	}
	sort.Float64s(reps)
	alpha := (1 - level) / 2
	return CI{
		Point: statistic(xs),
		Lo:    quantileSorted(reps, alpha),
		Hi:    quantileSorted(reps, 1-alpha),
		Level: level,
	}, nil
}

// PairedBootstrapLinear estimates percentile confidence intervals for the
// intercept and slope of a simple linear regression of ys on xs by
// resampling (x, y) pairs with replacement. Degenerate resamples (all x
// equal) are redrawn, which is unbiased for the non-degenerate population of
// resamples and cannot loop forever when the original xs are non-degenerate.
func PairedBootstrapLinear(r *rng.Source, xs, ys []float64, iters int, level float64) (intercept, slope CI, err error) {
	if len(xs) != len(ys) {
		return CI{}, CI{}, fmt.Errorf("stat: paired bootstrap needs equal lengths, got %d and %d", len(xs), len(ys))
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		return CI{}, CI{}, fmt.Errorf("stat: paired bootstrap: %w", err)
	}
	if iters < 2 {
		return CI{}, CI{}, fmt.Errorf("stat: paired bootstrap needs at least 2 iterations, got %d", iters)
	}
	if level <= 0 || level >= 1 {
		return CI{}, CI{}, fmt.Errorf("stat: paired bootstrap level must be in (0,1), got %v", level)
	}
	n := len(xs)
	icepts := make([]float64, 0, iters)
	slopes := make([]float64, 0, iters)
	bx := make([]float64, n)
	by := make([]float64, n)
	const maxRedraws = 1000
	for redraws := 0; len(slopes) < iters; {
		for i := 0; i < n; i++ {
			j := r.Intn(n)
			bx[i], by[i] = xs[j], ys[j]
		}
		bf, ferr := FitLinear(bx, by)
		if ferr != nil {
			redraws++
			if redraws > maxRedraws {
				return CI{}, CI{}, fmt.Errorf("stat: paired bootstrap: too many degenerate resamples: %w", ferr)
			}
			continue
		}
		icepts = append(icepts, bf.Intercept)
		slopes = append(slopes, bf.Slope)
	}
	sort.Float64s(icepts)
	sort.Float64s(slopes)
	alpha := (1 - level) / 2
	intercept = CI{Point: fit.Intercept, Lo: quantileSorted(icepts, alpha), Hi: quantileSorted(icepts, 1-alpha), Level: level}
	slope = CI{Point: fit.Slope, Lo: quantileSorted(slopes, alpha), Hi: quantileSorted(slopes, 1-alpha), Level: level}
	return intercept, slope, nil
}
