package stat

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// LinearFit is the result of a simple least-squares regression
// y = Intercept + Slope·x.
type LinearFit struct {
	Intercept float64
	Slope     float64
	// R2 is the coefficient of determination in [0, 1] (can be negative
	// for pathological fits, which callers treat as "no fit").
	R2 float64
	// N is the number of points used.
	N int
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// InvertY returns the x at which the fitted line reaches y. It returns an
// error when the slope is (near) zero, i.e. the line cannot be inverted.
func (f LinearFit) InvertY(y float64) (float64, error) {
	if math.Abs(f.Slope) < 1e-15 {
		return 0, fmt.Errorf("stat: cannot invert fit with zero slope")
	}
	return (y - f.Intercept) / f.Slope, nil
}

// FitLinear performs ordinary least squares of y on x. It requires at least
// two points and non-zero x variance.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stat: x/y length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stat: need >= 2 points, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stat: x has zero variance")
	}
	slope := sxy / sxx
	intercept := my - slope*mx

	// R² = 1 − SS_res / SS_tot.
	var ssRes, ssTot float64
	for i := range xs {
		r := ys[i] - (intercept + slope*xs[i])
		ssRes += r * r
		d := ys[i] - my
		ssTot += d * d
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Intercept: intercept, Slope: slope, R2: r2, N: len(xs)}, nil
}

// MultiLinearFit is the result of multiple least-squares regression
// y = Coeffs[0] + Coeffs[1]·x1 + … + Coeffs[k]·xk.
type MultiLinearFit struct {
	// Coeffs[0] is the intercept; Coeffs[1:] align with feature columns.
	Coeffs []float64
	R2     float64
	N      int
}

// Predict evaluates the fitted hyperplane at the feature vector x.
func (f MultiLinearFit) Predict(x []float64) float64 {
	y := f.Coeffs[0]
	for i, v := range x {
		y += f.Coeffs[i+1] * v
	}
	return y
}

// FitMultiLinear performs ordinary least squares of y on multiple feature
// columns via the normal equations (XᵀX)β = Xᵀy solved with Cholesky. rows
// of features are observations.
func FitMultiLinear(features [][]float64, ys []float64) (MultiLinearFit, error) {
	n := len(features)
	if n != len(ys) {
		return MultiLinearFit{}, fmt.Errorf("stat: features/y length mismatch %d vs %d", n, len(ys))
	}
	if n == 0 {
		return MultiLinearFit{}, fmt.Errorf("stat: empty design")
	}
	k := len(features[0])
	if n < k+1 {
		return MultiLinearFit{}, fmt.Errorf("stat: %d observations cannot fit %d coefficients", n, k+1)
	}

	// Design matrix with leading 1s column.
	x := linalg.NewMatrix(n, k+1)
	for i, row := range features {
		if len(row) != k {
			return MultiLinearFit{}, fmt.Errorf("stat: ragged feature row %d", i)
		}
		x.Set(i, 0, 1)
		for j, v := range row {
			x.Set(i, j+1, v)
		}
	}
	xt := x.T()
	xtx := xt.Mul(x)
	// Tiny ridge to keep Cholesky stable on nearly-collinear designs.
	for i := 0; i < xtx.Rows(); i++ {
		xtx.Set(i, i, xtx.At(i, i)+1e-12)
	}
	xty := xt.MulVec(ys)
	beta, err := linalg.SolveSPD(xtx, xty)
	if err != nil {
		return MultiLinearFit{}, fmt.Errorf("stat: normal equations: %w", err)
	}

	fit := MultiLinearFit{Coeffs: beta, N: n}
	my := Mean(ys)
	var ssRes, ssTot float64
	for i := range ys {
		r := ys[i] - fit.Predict(features[i])
		ssRes += r * r
		d := ys[i] - my
		ssTot += d * d
	}
	fit.R2 = 1.0
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	}
	return fit, nil
}
