package stat

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestFitPCADominantDirection(t *testing.T) {
	// Points spread along the diagonal (x, x) with small orthogonal noise:
	// PC1 must align with (1,1)/√2 and explain most of the variance.
	r := rng.New(3)
	rows := make([][]float64, 500)
	for i := range rows {
		a := r.NormFloat64() * 10
		b := r.NormFloat64() * 0.5
		rows[i] = []float64{a + b, a - b}
	}
	p, err := FitPCA(rows)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim != 2 {
		t.Fatalf("Dim = %d", p.Dim)
	}
	c := p.Components[0]
	if math.Abs(math.Abs(c[0])-math.Sqrt2/2) > 0.02 || math.Abs(c[0]-c[1]) > 0.04 {
		t.Errorf("PC1 = %v, want ~(0.707, 0.707)", c)
	}
	if p.ExplainedVarianceRatio[0] < 0.9 {
		t.Errorf("PC1 explains %v, want > 0.9", p.ExplainedVarianceRatio[0])
	}
	if got := p.ComponentsFor(0.9); got != 1 {
		t.Errorf("ComponentsFor(0.9) = %d, want 1", got)
	}
	if got := p.ComponentsFor(0.9999999); got != 2 {
		t.Errorf("ComponentsFor(~1) = %d, want 2", got)
	}
}

func TestFitPCAConstantColumn(t *testing.T) {
	rows := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	p, err := FitPCA(rows)
	if err != nil {
		t.Fatal(err)
	}
	// The constant column must not blow up standardization.
	for _, v := range p.Eigenvalues {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("eigenvalues contain non-finite: %v", p.Eigenvalues)
		}
	}
}

func TestFitPCAErrors(t *testing.T) {
	if _, err := FitPCA(nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := FitPCA([][]float64{{1, 2}}); err == nil {
		t.Error("single observation should error")
	}
	if _, err := FitPCA([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestPCATransform(t *testing.T) {
	rows := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4.1}}
	p, err := FitPCA(rows)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Transform([]float64{2, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("Transform dims = %d", len(out))
	}
	if _, err := p.Transform([]float64{1}, 1); err == nil {
		t.Error("wrong input dim should error")
	}
	if _, err := p.Transform([]float64{1, 2}, 3); err == nil {
		t.Error("too many components should error")
	}
	if _, err := p.Transform([]float64{1, 2}, 0); err == nil {
		t.Error("zero components should error")
	}
}

func TestPCATopLoadings(t *testing.T) {
	// Three variables: first two correlated, third independent noise.
	r := rng.New(41)
	rows := make([][]float64, 400)
	for i := range rows {
		a := r.NormFloat64()
		rows[i] = []float64{a, a + r.NormFloat64()*0.05, r.NormFloat64()}
	}
	p, err := FitPCA(rows)
	if err != nil {
		t.Fatal(err)
	}
	top := p.TopLoadings(0, 0.5)
	if len(top) != 2 || top[0] != 0 || top[1] != 1 {
		t.Errorf("TopLoadings(PC1) = %v, want [0 1]", top)
	}
	if got := p.TopLoadings(-1, 0.5); got != nil {
		t.Errorf("out-of-range component should return nil, got %v", got)
	}
	if got := p.TopLoadings(99, 0.5); got != nil {
		t.Errorf("out-of-range component should return nil, got %v", got)
	}
}
