package stat

import (
	"math"
	"sort"
)

// Ranks returns the fractional ranks of xs (1-based; ties receive the mean
// of the ranks they would occupy). Fractional ranking is what Spearman
// correlation requires for tied observations.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] { //lppm:allow floatcmp -- Spearman rank ties are defined by exact value equality; a tolerance would merge genuinely distinct ranks
			j++
		}
		// Positions i..j hold equal values; their shared rank is the
		// average of the 1-based positions.
		mean := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mean
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns the Spearman rank-correlation coefficient of the paired
// samples. It is Pearson correlation on fractional ranks, robust to
// monotone-nonlinear relationships; NaN for degenerate inputs (mismatched or
// short lengths, zero variance), mirroring Correlation.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return Correlation(Ranks(xs), Ranks(ys))
}

// KendallTau returns the Kendall τ-b rank correlation of the paired samples,
// which corrects for ties in either variable. It is NaN for degenerate
// inputs. The implementation is the direct O(n²) pair count — fine for the
// property-screening sample sizes this repository uses (tens of users).
func KendallTau(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	var concordant, discordant, tiedXOnly, tiedYOnly int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch {
			case dx == 0 && dy == 0:
				// Tied in both: excluded from both denominator
				// factors.
			case dx == 0:
				tiedXOnly++
			case dy == 0:
				tiedYOnly++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	// τ-b = (C−D) / √((n0−n1)(n0−n2)): each factor counts the pairs not
	// tied in that variable.
	notTiedX := float64(concordant + discordant + tiedYOnly)
	notTiedY := float64(concordant + discordant + tiedXOnly)
	if notTiedX == 0 || notTiedY == 0 {
		return math.NaN()
	}
	return float64(concordant-discordant) / math.Sqrt(notTiedX*notTiedY)
}
