package stat

import (
	"math"
	"testing"
)

func TestNewHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("empty range should error")
	}
	if _, err := NewHistogram(2, 1, 4); err == nil {
		t.Error("inverted range should error")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 1.9, 2, 5, 9.99, -5, 15} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	// Bins: [0,2): {0, 1.9, clamped -5} = 3; [2,4): {2} = 1;
	// [4,6): {5} = 1; [8,10): {9.99, clamped 15} = 2.
	want := []int{3, 1, 1, 0, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if got := h.Fraction(0); !almostEq(got, 3.0/7, 1e-12) {
		t.Errorf("Fraction(0) = %v", got)
	}
}

func TestHistogramEntropy(t *testing.T) {
	h, _ := NewHistogram(0, 4, 4)
	if h.Entropy() != 0 {
		t.Error("empty histogram entropy should be 0")
	}
	// Uniform across 4 bins: entropy = ln 4, normalized = 1.
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Add(v)
	}
	if got := h.Entropy(); !almostEq(got, math.Log(4), 1e-12) {
		t.Errorf("Entropy = %v, want ln4", got)
	}
	if got := h.NormalizedEntropy(); !almostEq(got, 1, 1e-12) {
		t.Errorf("NormalizedEntropy = %v, want 1", got)
	}

	// All mass in one bin: entropy 0.
	h2, _ := NewHistogram(0, 4, 4)
	for i := 0; i < 10; i++ {
		h2.Add(0.5)
	}
	if got := h2.Entropy(); got != 0 {
		t.Errorf("single-bin entropy = %v", got)
	}

	single, _ := NewHistogram(0, 1, 1)
	single.Add(0.5)
	if got := single.NormalizedEntropy(); got != 0 {
		t.Errorf("1-bin normalized entropy = %v, want 0", got)
	}
}

func TestEntropyOfCounts(t *testing.T) {
	if got := EntropyOfCounts(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := EntropyOfCounts([]int{5, 0, 0}); got != 0 {
		t.Errorf("concentrated = %v", got)
	}
	if got := EntropyOfCounts([]int{1, 1, 1, 1}); !almostEq(got, math.Log(4), 1e-12) {
		t.Errorf("uniform = %v, want ln4", got)
	}
}

func TestLogSpace(t *testing.T) {
	got := LogSpace(1e-4, 1, 5)
	want := []float64{1e-4, 1e-3, 1e-2, 1e-1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > want[i]*1e-12 {
			t.Errorf("LogSpace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLogSpacePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"non-positive lo": func() { LogSpace(0, 1, 3) },
		"non-positive hi": func() { LogSpace(1, -1, 3) },
		"n too small":     func() { LogSpace(1, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLinSpace(t *testing.T) {
	got := LinSpace(0, 1, 3)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Errorf("LinSpace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("LinSpace n=1 should panic")
			}
		}()
		LinSpace(0, 1, 1)
	}()
}
