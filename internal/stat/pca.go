package stat

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// PCA is the result of a principal component analysis: the paper's framework
// (step 1) uses it to soundly choose which dataset properties d_i matter for
// the privacy/utility model.
type PCA struct {
	// Dim is the number of input variables.
	Dim int
	// Means and Stds hold the per-variable standardization parameters.
	Means, Stds []float64
	// Eigenvalues are the variances along each principal component, in
	// descending order.
	Eigenvalues []float64
	// Components holds the unit loading vectors; Components[k][j] is the
	// weight of input variable j in component k.
	Components [][]float64
	// ExplainedVarianceRatio[k] is Eigenvalues[k] / ΣEigenvalues.
	ExplainedVarianceRatio []float64
}

// FitPCA runs PCA on standardized variables (correlation-matrix PCA). rows
// are observations, columns are variables. Variables with zero variance are
// kept but contribute zero loadings.
func FitPCA(rows [][]float64) (*PCA, error) {
	n := len(rows)
	if n < 2 {
		return nil, fmt.Errorf("stat: PCA needs >= 2 observations, got %d", n)
	}
	d := len(rows[0])

	p := &PCA{Dim: d, Means: make([]float64, d), Stds: make([]float64, d)}
	cols := make([][]float64, d)
	for j := 0; j < d; j++ {
		col := make([]float64, n)
		for i, r := range rows {
			if len(r) != d {
				return nil, fmt.Errorf("stat: ragged PCA row %d", i)
			}
			col[i] = r[j]
		}
		cols[j] = col
		p.Means[j] = Mean(col)
		sd := StdDev(col)
		if sd == 0 || math.IsNaN(sd) {
			sd = 1 // constant column: standardized values become 0
		}
		p.Stds[j] = sd
	}

	std := linalg.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			std.Set(i, j, (cols[j][i]-p.Means[j])/p.Stds[j])
		}
	}
	cov, err := linalg.Covariance(std)
	if err != nil {
		return nil, fmt.Errorf("stat: PCA covariance: %w", err)
	}
	vals, vecs, err := linalg.EigenSym(cov)
	if err != nil {
		return nil, fmt.Errorf("stat: PCA eigendecomposition: %w", err)
	}

	p.Eigenvalues = vals
	p.Components = make([][]float64, d)
	var total float64
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	p.ExplainedVarianceRatio = make([]float64, d)
	for k := 0; k < d; k++ {
		p.Components[k] = vecs.Col(k)
		if total > 0 && vals[k] > 0 {
			p.ExplainedVarianceRatio[k] = vals[k] / total
		}
	}
	return p, nil
}

// Transform projects an observation onto the first k principal components.
func (p *PCA) Transform(x []float64, k int) ([]float64, error) {
	if len(x) != p.Dim {
		return nil, fmt.Errorf("stat: PCA transform dim %d, want %d", len(x), p.Dim)
	}
	if k <= 0 || k > p.Dim {
		return nil, fmt.Errorf("stat: invalid component count %d", k)
	}
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		var s float64
		for j := 0; j < p.Dim; j++ {
			s += p.Components[c][j] * (x[j] - p.Means[j]) / p.Stds[j]
		}
		out[c] = s
	}
	return out, nil
}

// ComponentsFor returns how many leading components explain at least the
// given fraction of total variance.
func (p *PCA) ComponentsFor(varianceFraction float64) int {
	var cum float64
	for k, r := range p.ExplainedVarianceRatio {
		cum += r
		if cum >= varianceFraction {
			return k + 1
		}
	}
	return p.Dim
}

// TopLoadings returns the indices of the input variables whose absolute
// loading on component k is at least thresh, i.e. the variables that
// "impactfully characterize" the data along that axis (framework step 1).
func (p *PCA) TopLoadings(k int, thresh float64) []int {
	if k < 0 || k >= p.Dim {
		return nil
	}
	var idx []int
	for j, w := range p.Components[k] {
		if math.Abs(w) >= thresh {
			idx = append(idx, j)
		}
	}
	return idx
}
