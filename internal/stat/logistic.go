package stat

import (
	"fmt"
	"math"
)

// SigmoidFit is a fitted four-parameter logistic curve
//
//	y(x) = Lo + (Hi − Lo) / (1 + exp(−K·(x − X0)))
//
// The paper's Equation 2 linearizes only the non-saturated zone of the
// metric-vs-log(ε) curves; the sigmoid models the whole S-shape including
// both plateaus, which makes it the natural "more metrics and parameters"
// extension (paper §4) and an ablation partner for the log-linear model.
type SigmoidFit struct {
	// Lo and Hi are the lower and upper asymptotes.
	Lo, Hi float64
	// K is the steepness (same sign as the y-vs-x trend).
	K float64
	// X0 is the midpoint abscissa where y = (Lo+Hi)/2.
	X0 float64
	// R2 is the coefficient of determination on the original scale.
	R2 float64
}

// Predict evaluates the fitted curve at x.
func (f SigmoidFit) Predict(x float64) float64 {
	return f.Lo + (f.Hi-f.Lo)/(1+math.Exp(-f.K*(x-f.X0)))
}

// InvertY returns the x at which the curve attains y. It fails when y is
// outside the open interval (Lo, Hi) — the plateaus are not invertible —
// or when the curve is flat.
func (f SigmoidFit) InvertY(y float64) (float64, error) {
	span := f.Hi - f.Lo
	if span == 0 || f.K == 0 {
		return 0, fmt.Errorf("stat: sigmoid is flat, cannot invert")
	}
	u := (y - f.Lo) / span
	if u <= 0 || u >= 1 {
		return 0, fmt.Errorf("stat: y=%v outside invertible range (%v, %v)", y, f.Lo, f.Hi)
	}
	return f.X0 + math.Log(u/(1-u))/f.K, nil
}

// String implements fmt.Stringer.
func (f SigmoidFit) String() string {
	return fmt.Sprintf("y = %.4g + %.4g/(1+exp(-%.4g·(x-%.4g))), R²=%.3f", f.Lo, f.Hi-f.Lo, f.K, f.X0, f.R2)
}

// FitSigmoid fits the four-parameter logistic by asymptote anchoring plus
// logit linearization:
//
//  1. anchor Lo and Hi slightly beyond the sample extremes (so every
//     observation has a finite logit),
//  2. transform interior points z = logit((y−Lo)/(Hi−Lo)) and fit the line
//     z = K·(x − X0) by least squares,
//  3. score R² on the original scale.
//
// The anchoring margin is a small fraction of the sample range; for the
// saturated metric curves this repository fits (both plateaus well
// represented), the estimator is accurate and, unlike Gauss–Newton, cannot
// diverge. At least four points and a non-zero y-range are required.
func FitSigmoid(xs, ys []float64) (SigmoidFit, error) {
	if len(xs) != len(ys) {
		return SigmoidFit{}, fmt.Errorf("stat: sigmoid fit needs equal lengths, got %d and %d", len(xs), len(ys))
	}
	if len(xs) < 4 {
		return SigmoidFit{}, fmt.Errorf("stat: sigmoid fit needs at least 4 points, got %d", len(xs))
	}
	ymin, ymax := Min(ys), Max(ys)
	span := ymax - ymin
	if span <= 0 {
		return SigmoidFit{}, fmt.Errorf("stat: sigmoid fit needs non-constant y values")
	}
	const marginFrac = 0.001
	lo := ymin - marginFrac*span
	hi := ymax + marginFrac*span

	// Weight points by the binomial variance factor u(1−u) — the
	// classical minimum-chi-square logit fit. Points sitting on the
	// plateaus have logits dominated by the anchoring margin rather
	// than the curve, so when the transition is well resolved (enough
	// interior points) they are trimmed; when the transition is sharper
	// than the sweep grid they are all the information there is and are
	// kept, their tiny weights still locating the midpoint.
	const uInterior = 0.02
	interior := 0
	for i := range ys {
		if u := (ys[i] - lo) / (hi - lo); u > uInterior && u < 1-uInterior {
			interior++
		}
	}
	uTrim := 0.0
	if interior >= 4 {
		uTrim = uInterior
	}
	var sw, swx, swz, swxx, swxz float64
	var kept int
	for i := range xs {
		u := (ys[i] - lo) / (hi - lo)
		if u <= uTrim || u >= 1-uTrim {
			continue
		}
		z := math.Log(u / (1 - u))
		w := u * (1 - u)
		sw += w
		swx += w * xs[i]
		swz += w * z
		swxx += w * xs[i] * xs[i]
		swxz += w * xs[i] * z
		kept++
	}
	if kept < 2 {
		return SigmoidFit{}, fmt.Errorf("stat: sigmoid fit kept %d non-plateau points, need ≥ 2", kept)
	}
	det := sw*swxx - swx*swx
	if det == 0 {
		return SigmoidFit{}, fmt.Errorf("stat: sigmoid fit is degenerate (identical x values)")
	}
	k := (sw*swxz - swx*swz) / det
	icept := (swz - k*swx) / sw
	if k == 0 {
		return SigmoidFit{}, fmt.Errorf("stat: sigmoid fit found zero steepness")
	}
	fit := SigmoidFit{Lo: lo, Hi: hi, K: k, X0: -icept / k}
	fit.R2 = rsquared(xs, ys, fit.Predict)
	return fit, nil
}

// rsquared computes the coefficient of determination of predict over the
// sample. By convention it returns 1 for a perfect fit of a constant series
// and -inf-like negatives are clamped to 0 only by callers that need it.
func rsquared(xs, ys []float64, predict func(float64) float64) float64 {
	my := Mean(ys)
	var ssRes, ssTot float64
	for i := range xs {
		d := ys[i] - predict(xs[i])
		ssRes += d * d
		t := ys[i] - my
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
