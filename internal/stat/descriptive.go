// Package stat provides the statistics toolbox of the framework: descriptive
// statistics, least-squares regression with goodness-of-fit, principal
// component analysis, histograms and the probability distributions used by
// LPPMs — most notably the planar Laplace distribution behind
// Geo-Indistinguishability, sampled exactly via the Lambert W function.
package stat

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance, or NaN for fewer than two
// values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest value, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-th quantile (q in [0, 1]) using linear
// interpolation between order statistics (type-7, the numpy default). It
// returns NaN for an empty slice and clamps q to [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// quantileSorted computes the quantile of an already-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds the standard five-plus descriptive statistics of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, P25      float64
	Median        float64
	P75, P90, Max float64
}

// Summarize computes a Summary. Std is NaN when N < 2.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Mean: nan, Std: nan, Min: nan, P25: nan, Median: nan, P75: nan, P90: nan, Max: nan}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    sorted[0],
		P25:    quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		P75:    quantileSorted(sorted, 0.75),
		P90:    quantileSorted(sorted, 0.90),
		Max:    sorted[len(sorted)-1],
	}
}

// Clamp restricts v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Correlation returns the Pearson correlation coefficient of two equal-length
// samples, or NaN when undefined (length mismatch, < 2 points, zero
// variance).
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}
