package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLambertWm1Identity(t *testing.T) {
	// W₋₁(x)·e^(W₋₁(x)) == x across the domain.
	for _, x := range []float64{-1 / math.E, -0.367, -0.3, -0.2, -0.1, -0.01, -1e-4, -1e-8, -1e-12} {
		w, err := LambertWm1(x)
		if err != nil {
			t.Fatalf("LambertWm1(%v): %v", x, err)
		}
		got := w * math.Exp(w)
		if math.Abs(got-x) > math.Abs(x)*1e-10+1e-300 {
			t.Errorf("W(%v)=%v: w·e^w = %v", x, w, got)
		}
		if w > -1+1e-9 {
			t.Errorf("W₋₁ must be ≤ −1, got %v for x=%v", w, x)
		}
	}
}

func TestLambertWm1KnownValues(t *testing.T) {
	// W₋₁(−1/e) = −1 exactly.
	w, err := LambertWm1(-1 / math.E)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(w, -1, 1e-9) {
		t.Errorf("W₋₁(−1/e) = %v, want −1", w)
	}
	// W₋₁(−0.1) ≈ −3.577152063957297 (reference value).
	w, err = LambertWm1(-0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(w, -3.577152063957297, 1e-10) {
		t.Errorf("W₋₁(−0.1) = %v", w)
	}
}

func TestLambertWm1Domain(t *testing.T) {
	for _, x := range []float64{0, 0.5, -0.4, -1} {
		if _, err := LambertWm1(x); err == nil {
			t.Errorf("LambertWm1(%v) should be out of domain", x)
		}
	}
}

func TestPlanarLaplaceQuantileCDFRoundTrip(t *testing.T) {
	f := func(pRaw uint16, eRaw uint8) bool {
		p := float64(pRaw) / 65536 // [0, 1)
		epsilon := math.Pow(10, -4+4*float64(eRaw)/256)
		r, err := PlanarLaplaceRadiusQuantile(epsilon, p)
		if err != nil {
			return false
		}
		back := PlanarLaplaceRadiusCDF(epsilon, r)
		return math.Abs(back-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanarLaplaceQuantileMonotone(t *testing.T) {
	const epsilon = 0.01
	prev := -1.0
	for p := 0.0; p < 0.999; p += 0.01 {
		r, err := PlanarLaplaceRadiusQuantile(epsilon, p)
		if err != nil {
			t.Fatal(err)
		}
		if r <= prev {
			t.Fatalf("quantile not strictly increasing at p=%v: %v <= %v", p, r, prev)
		}
		prev = r
	}
}

func TestPlanarLaplaceQuantileErrors(t *testing.T) {
	if _, err := PlanarLaplaceRadiusQuantile(0, 0.5); err == nil {
		t.Error("epsilon=0 should error")
	}
	if _, err := PlanarLaplaceRadiusQuantile(-1, 0.5); err == nil {
		t.Error("negative epsilon should error")
	}
	if _, err := PlanarLaplaceRadiusQuantile(0.01, 1); err == nil {
		t.Error("p=1 should error")
	}
	if _, err := PlanarLaplaceRadiusQuantile(0.01, -0.1); err == nil {
		t.Error("negative p should error")
	}
	if r, err := PlanarLaplaceRadiusQuantile(0.01, 0); err != nil || r != 0 {
		t.Errorf("p=0 should give radius 0, got %v, %v", r, err)
	}
}

func TestPlanarLaplaceCDFShape(t *testing.T) {
	const epsilon = 0.01
	if got := PlanarLaplaceRadiusCDF(epsilon, 0); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := PlanarLaplaceRadiusCDF(epsilon, -5); got != 0 {
		t.Errorf("CDF(-5) = %v", got)
	}
	// CDF at the mean radius 2/ε is 1 − 3e⁻² ≈ 0.594.
	if got := PlanarLaplaceRadiusCDF(epsilon, 200); !almostEq(got, 1-3*math.Exp(-2), 1e-12) {
		t.Errorf("CDF(mean) = %v", got)
	}
	if got := PlanarLaplaceRadiusCDF(epsilon, 1e7); !almostEq(got, 1, 1e-9) {
		t.Errorf("CDF(huge) = %v, want ~1", got)
	}
}
