package stat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// sigmoidPoints samples a known logistic curve on a regular grid.
func sigmoidPoints(lo, hi, k, x0 float64, n int) (xs, ys []float64) {
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		x := -10 + 20*float64(i)/float64(n-1)
		xs[i] = x
		ys[i] = lo + (hi-lo)/(1+math.Exp(-k*(x-x0)))
	}
	return xs, ys
}

func TestFitSigmoidRecoversMidpointAndSteepness(t *testing.T) {
	xs, ys := sigmoidPoints(0, 1, 1.5, 0.7, 41)
	fit, err := FitSigmoid(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.X0-0.7) > 0.05 {
		t.Errorf("X0 = %v, want ≈ 0.7", fit.X0)
	}
	if math.Abs(fit.K-1.5) > 0.15 {
		t.Errorf("K = %v, want ≈ 1.5", fit.K)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R² = %v, want ≈ 1 on noiseless data", fit.R2)
	}
}

func TestFitSigmoidDecreasingCurve(t *testing.T) {
	xs, ys := sigmoidPoints(0.2, 0.9, -2, -1, 41)
	fit, err := FitSigmoid(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.K >= 0 {
		t.Errorf("K = %v, want negative for a decreasing curve", fit.K)
	}
	if math.Abs(fit.X0+1) > 0.1 {
		t.Errorf("X0 = %v, want ≈ -1", fit.X0)
	}
}

func TestSigmoidPredictInvertRoundTrip(t *testing.T) {
	xs, ys := sigmoidPoints(0, 1, 2, 0, 41)
	fit, err := FitSigmoid(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-2, -0.5, 0, 0.5, 2} {
		y := fit.Predict(x)
		back, err := fit.InvertY(y)
		if err != nil {
			t.Fatalf("InvertY(%v): %v", y, err)
		}
		if math.Abs(back-x) > 1e-9 {
			t.Errorf("round trip x=%v → y=%v → %v", x, y, back)
		}
	}
}

func TestSigmoidInvertRejectsPlateauValues(t *testing.T) {
	fit := SigmoidFit{Lo: 0, Hi: 1, K: 1, X0: 0}
	for _, y := range []float64{-0.1, 0, 1, 1.1} {
		if _, err := fit.InvertY(y); err == nil {
			t.Errorf("InvertY(%v) should fail outside (Lo, Hi)", y)
		}
	}
	flat := SigmoidFit{Lo: 0.5, Hi: 0.5, K: 1, X0: 0}
	if _, err := flat.InvertY(0.5); err == nil {
		t.Error("InvertY on a flat sigmoid should fail")
	}
}

func TestFitSigmoidWithNoise(t *testing.T) {
	r := rng.New(3)
	xs, ys := sigmoidPoints(0, 1, 1, 0, 81)
	for i := range ys {
		ys[i] = Clamp(ys[i]+0.02*r.NormFloat64(), 0, 1)
	}
	fit, err := FitSigmoid(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.X0) > 0.3 {
		t.Errorf("X0 = %v, want ≈ 0 under mild noise", fit.X0)
	}
	if fit.R2 < 0.97 {
		t.Errorf("R² = %v, want > 0.97 under mild noise", fit.R2)
	}
}

func TestFitSigmoidErrors(t *testing.T) {
	if _, err := FitSigmoid([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := FitSigmoid([]float64{1, 2, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("want error for too few points")
	}
	if _, err := FitSigmoid([]float64{1, 2, 3, 4}, []float64{2, 2, 2, 2}); err == nil {
		t.Error("want error for constant y")
	}
}

func TestFitSigmoidMonotonePredictionProperty(t *testing.T) {
	// Property: the fitted curve is monotone in the direction of the
	// generating curve, for random true parameters.
	f := func(seed int64) bool {
		r := rng.New(seed)
		k := 0.5 + 3*r.Float64()
		if r.Intn(2) == 0 {
			k = -k
		}
		x0 := -2 + 4*r.Float64()
		xs, ys := sigmoidPoints(0, 1, k, x0, 31)
		fit, err := FitSigmoid(xs, ys)
		if err != nil {
			return false
		}
		prev := fit.Predict(-10)
		for x := -9.0; x <= 10; x++ {
			cur := fit.Predict(x)
			if k > 0 && cur < prev-1e-12 {
				return false
			}
			if k < 0 && cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
