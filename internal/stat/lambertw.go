package stat

import (
	"fmt"
	"math"
)

// LambertWm1 evaluates the W₋₁ branch of the Lambert W function (the inverse
// of w·e^w on w ≤ −1) for x in [−1/e, 0). This is the exact inverse needed
// to sample the radial component of the planar Laplace distribution used by
// Geo-Indistinguishability: the CDF of the radius is
//
//	C_ε(r) = 1 − (1 + εr)·e^(−εr)
//
// whose inverse is r = −(1/ε)·(W₋₁((p−1)/e) + 1).
//
// The implementation seeds with the asymptotic series near the branch point
// and for small |x|, then polishes with Halley iterations to ~1e-14 relative
// accuracy.
func LambertWm1(x float64) (float64, error) {
	const negInvE = -1.0 / math.E
	if x < negInvE-1e-15 || x >= 0 {
		return 0, fmt.Errorf("stat: LambertWm1 domain is [-1/e, 0), got %v", x)
	}
	if x <= negInvE {
		return -1, nil
	}

	// Initial guess.
	var w float64
	if x > -0.1 {
		// Near zero: W₋₁(x) ≈ ln(−x) − ln(−ln(−x)).
		l1 := math.Log(-x)
		l2 := math.Log(-l1)
		w = l1 - l2 + l2/l1
	} else {
		// Near the branch point −1/e: series in p = −sqrt(2(1+ex)).
		p := -math.Sqrt(2 * (1 + math.E*x))
		w = -1 + p - p*p/3 + 11*p*p*p/72
	}

	// Halley iteration: w ← w − f/(f'·(1 − f·f''/(2 f'²))) with
	// f(w) = w·e^w − x.
	for i := 0; i < 50; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		if f == 0 {
			break
		}
		wp1 := w + 1
		denom := ew*wp1 - (w+2)*f/(2*wp1)
		if denom == 0 {
			break
		}
		dw := f / denom
		w -= dw
		if math.Abs(dw) <= 1e-15*(1+math.Abs(w)) {
			break
		}
	}
	return w, nil
}

// PlanarLaplaceRadiusQuantile returns the radius r such that a planar
// Laplace distribution with parameter epsilon (meters⁻¹) places probability
// p inside the disc of radius r. In other words it is C_ε⁻¹(p), the inverse
// CDF used both for exact noise sampling and for analytic accuracy bounds.
func PlanarLaplaceRadiusQuantile(epsilon, p float64) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("stat: epsilon must be positive, got %v", epsilon)
	}
	if p < 0 || p >= 1 {
		return 0, fmt.Errorf("stat: probability must be in [0, 1), got %v", p)
	}
	if p == 0 {
		return 0, nil
	}
	w, err := LambertWm1((p - 1) / math.E)
	if err != nil {
		return 0, fmt.Errorf("stat: radius quantile: %w", err)
	}
	return -(w + 1) / epsilon, nil
}

// PlanarLaplaceRadiusCDF returns C_ε(r) = 1 − (1+εr)·e^(−εr), the
// probability that planar Laplace noise of parameter epsilon lands within
// distance r of the true location.
func PlanarLaplaceRadiusCDF(epsilon, r float64) float64 {
	if r <= 0 {
		return 0
	}
	er := epsilon * r
	return 1 - (1+er)*math.Exp(-er)
}
