package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEq(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance of this classic set is 32/7.
	if got := Variance(xs); !almostEq(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
}

func TestEmptyInputsAreNaN(t *testing.T) {
	for name, got := range map[string]float64{
		"Mean":     Mean(nil),
		"Variance": Variance([]float64{1}),
		"Min":      Min(nil),
		"Max":      Max(nil),
		"Quantile": Quantile(nil, 0.5),
	} {
		if !math.IsNaN(got) {
			t.Errorf("%s of degenerate input = %v, want NaN", name, got)
		}
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9}
	if got := Min(xs); got != -9 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
		{-0.5, 1}, {1.5, 5}, // clamped
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Median([]float64{1, 3, 2}); got != 2 {
		t.Errorf("Median = %v, want 2", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || !almostEq(s.Mean, 5.5, 1e-12) || s.Min != 1 || s.Max != 10 {
		t.Errorf("Summary = %+v", s)
	}
	if !almostEq(s.Median, 5.5, 1e-12) || !almostEq(s.P90, 9.1, 1e-12) {
		t.Errorf("quantiles: median %v p90 %v", s.Median, s.P90)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5}, {-1, 0, 10, 0}, {11, 0, 10, 10},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Correlation(xs, []float64{2, 4, 6, 8}); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", got)
	}
	if got := Correlation(xs, []float64{8, 6, 4, 2}); !almostEq(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if got := Correlation(xs, []float64{5, 5, 5, 5}); !math.IsNaN(got) {
		t.Errorf("zero-variance correlation = %v, want NaN", got)
	}
	if got := Correlation(xs, xs[:2]); !math.IsNaN(got) {
		t.Errorf("length mismatch = %v, want NaN", got)
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
