package stat

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSampleLaplace1DMoments(t *testing.T) {
	r := rng.New(11)
	const n = 200000
	const b = 3.0
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		v := SampleLaplace1D(r, b)
		sum += v
		sumAbs += math.Abs(v)
	}
	if mean := sum / n; math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	// E|X| = b for Laplace(0, b).
	if meanAbs := sumAbs / n; math.Abs(meanAbs-b) > 0.05 {
		t.Errorf("Laplace E|X| = %v, want %v", meanAbs, b)
	}
}

func TestSamplePlanarLaplaceRadiusDistribution(t *testing.T) {
	r := rng.New(13)
	const n = 100000
	const epsilon = 0.01
	var sumR float64
	within := 0
	// Radius such that CDF = 0.5.
	r50, err := PlanarLaplaceRadiusQuantile(epsilon, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		e, nn := SamplePlanarLaplace(r, epsilon)
		radius := math.Hypot(e, nn)
		sumR += radius
		if radius <= r50 {
			within++
		}
	}
	// E[r] = 2/ε = 200 m.
	if mean := sumR / n; math.Abs(mean-200) > 3 {
		t.Errorf("mean radius = %v, want ~200", mean)
	}
	if frac := float64(within) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction within median radius = %v, want ~0.5", frac)
	}
}

func TestSamplePlanarLaplaceIsotropic(t *testing.T) {
	r := rng.New(17)
	const n = 50000
	quadrants := make([]int, 4)
	for i := 0; i < n; i++ {
		e, nn := SamplePlanarLaplace(r, 0.05)
		q := 0
		if e < 0 {
			q |= 1
		}
		if nn < 0 {
			q |= 2
		}
		quadrants[q]++
	}
	for q, c := range quadrants {
		frac := float64(c) / n
		if math.Abs(frac-0.25) > 0.01 {
			t.Errorf("quadrant %d fraction = %v, want ~0.25", q, frac)
		}
	}
}

func TestPlanarLaplaceMeanRadius(t *testing.T) {
	if got := PlanarLaplaceMeanRadius(0.01); got != 200 {
		t.Errorf("mean radius = %v, want 200", got)
	}
	if got := PlanarLaplaceMeanRadius(0.1); !almostEq(got, 20, 1e-12) {
		t.Errorf("mean radius = %v, want 20", got)
	}
}

func TestSampleGaussian2DMoments(t *testing.T) {
	r := rng.New(19)
	const n = 100000
	const sigma = 50.0
	var sumE, sumN, sumE2 float64
	for i := 0; i < n; i++ {
		e, nn := SampleGaussian2D(r, sigma)
		sumE += e
		sumN += nn
		sumE2 += e * e
	}
	if m := sumE / n; math.Abs(m) > 1 {
		t.Errorf("east mean = %v", m)
	}
	if m := sumN / n; math.Abs(m) > 1 {
		t.Errorf("north mean = %v", m)
	}
	if sd := math.Sqrt(sumE2 / n); math.Abs(sd-sigma) > 1 {
		t.Errorf("east std = %v, want %v", sd, sigma)
	}
}

func TestSampleExponentialMean(t *testing.T) {
	r := rng.New(23)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := SampleExponential(r, 42)
		if v < 0 {
			t.Fatal("exponential sample must be non-negative")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-42) > 1 {
		t.Errorf("exponential mean = %v, want ~42", mean)
	}
}

func TestSampleUniformRange(t *testing.T) {
	r := rng.New(29)
	for i := 0; i < 1000; i++ {
		v := SampleUniformRange(r, -3, 7)
		if v < -3 || v > 7 {
			t.Fatalf("uniform sample %v outside [-3, 7]", v)
		}
	}
}

func TestSampleTruncGaussian(t *testing.T) {
	r := rng.New(31)
	for i := 0; i < 1000; i++ {
		v := SampleTruncGaussian(r, 10, 5, 8, 12)
		if v < 8 || v > 12 {
			t.Fatalf("truncated sample %v outside [8, 12]", v)
		}
	}
	// Impossible bounds fall back to clamping the mean.
	v := SampleTruncGaussian(r, 0, 0.001, 100, 200)
	if v != 100 {
		t.Errorf("degenerate truncation = %v, want clamp to 100", v)
	}
}
