package stat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRanksSimple(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{5, 1, 5, 2})
	// 1→1, 2→2, the two 5s share (3+4)/2 = 3.5.
	want := []float64{3.5, 1, 3.5, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestSpearmanPerfectMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // nonlinear but monotone
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman of monotone data = %v, want 1", got)
	}
	rev := []float64{125, 64, 27, 8, 1}
	if got := Spearman(xs, rev); math.Abs(got+1) > 1e-12 {
		t.Errorf("Spearman of antitone data = %v, want -1", got)
	}
}

func TestSpearmanBeatsPearsonOnMonotoneNonlinear(t *testing.T) {
	xs := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		xs[i] = float64(i + 1)
		ys[i] = math.Exp(float64(i) / 4)
	}
	sp := Spearman(xs, ys)
	pe := Correlation(xs, ys)
	if sp <= pe {
		t.Errorf("expected Spearman (%v) > Pearson (%v) on exponential data", sp, pe)
	}
	if math.Abs(sp-1) > 1e-12 {
		t.Errorf("Spearman = %v, want exactly 1", sp)
	}
}

func TestKendallTauKnownValue(t *testing.T) {
	// Classic small example: one discordant pair among C(4,2)=6.
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1, 2, 4, 3}
	got := KendallTau(xs, ys)
	want := (5.0 - 1.0) / 6.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("KendallTau = %v, want %v", got, want)
	}
}

func TestKendallTauTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{1, 2, 2, 3}
	if got := KendallTau(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("KendallTau with aligned ties = %v, want 1", got)
	}
}

func TestCorrelationDegenerateInputs(t *testing.T) {
	for name, fn := range map[string]func([]float64, []float64) float64{
		"spearman": Spearman,
		"kendall":  KendallTau,
	} {
		if v := fn([]float64{1}, []float64{1}); !math.IsNaN(v) {
			t.Errorf("%s of single point = %v, want NaN", name, v)
		}
		if v := fn([]float64{1, 2}, []float64{1, 2, 3}); !math.IsNaN(v) {
			t.Errorf("%s of mismatched lengths = %v, want NaN", name, v)
		}
		if v := fn([]float64{2, 2, 2}, []float64{1, 2, 3}); !math.IsNaN(v) {
			t.Errorf("%s of constant xs = %v, want NaN", name, v)
		}
	}
}

func TestRankCorrelationInvariantUnderMonotoneTransform(t *testing.T) {
	// Property: Spearman(x, y) == Spearman(exp(x), y) because ranks are
	// invariant under strictly increasing transforms.
	f := func(seed int64) bool {
		r := rng.New(seed)
		n := 20
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		txs := make([]float64, n)
		for i := range xs {
			txs[i] = math.Exp(xs[i])
		}
		a, b := Spearman(xs, ys), Spearman(txs, ys)
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKendallBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(seed)
		n := 15
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(r.Intn(5))
			ys[i] = float64(r.Intn(5))
		}
		v := KendallTau(xs, ys)
		return math.IsNaN(v) || (v >= -1-1e-12 && v <= 1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
