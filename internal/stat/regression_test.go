package stat

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 0.5*x
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Intercept, 3, 1e-12) || !almostEq(fit.Slope, 0.5, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Errorf("R² = %v, want 1", fit.R2)
	}
	if got := fit.Predict(10); !almostEq(got, 8, 1e-12) {
		t.Errorf("Predict(10) = %v, want 8", got)
	}
	x, err := fit.InvertY(4)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x, 2, 1e-12) {
		t.Errorf("InvertY(4) = %v, want 2", x)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i) / 10
		ys[i] = -1 + 2*xs[i] + r.NormFloat64()*0.1
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 0.02 || math.Abs(fit.Intercept+1) > 0.1 {
		t.Errorf("noisy fit = %+v", fit)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R² = %v, want > 0.99", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitLinear([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("zero x variance should error")
	}
	flat, err := FitLinear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flat.InvertY(6); err == nil {
		t.Error("inverting a flat fit should error")
	}
}

func TestFitMultiLinearExact(t *testing.T) {
	// y = 1 + 2·x1 − 3·x2.
	features := [][]float64{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 2}, {3, -1},
	}
	ys := make([]float64, len(features))
	for i, f := range features {
		ys[i] = 1 + 2*f[0] - 3*f[1]
	}
	fit, err := FitMultiLinear(features, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, -3}
	for i, w := range want {
		if !almostEq(fit.Coeffs[i], w, 1e-6) {
			t.Errorf("coeff %d = %v, want %v", i, fit.Coeffs[i], w)
		}
	}
	if !almostEq(fit.R2, 1, 1e-9) {
		t.Errorf("R² = %v", fit.R2)
	}
	if got := fit.Predict([]float64{10, 10}); !almostEq(got, 1+20-30, 1e-6) {
		t.Errorf("Predict = %v", got)
	}
}

func TestFitMultiLinearErrors(t *testing.T) {
	if _, err := FitMultiLinear(nil, nil); err == nil {
		t.Error("empty design should error")
	}
	if _, err := FitMultiLinear([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitMultiLinear([][]float64{{1, 2}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Error("underdetermined should error")
	}
	if _, err := FitMultiLinear([][]float64{{1, 2}, {2}, {3, 4}}, []float64{1, 2, 3}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestFitMultiLinearMatchesSimple(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2.1, 3.9, 6.2, 8.1, 9.8}
	simple, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	features := make([][]float64, len(xs))
	for i, x := range xs {
		features[i] = []float64{x}
	}
	multi, err := FitMultiLinear(features, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(simple.Intercept, multi.Coeffs[0], 1e-6) ||
		!almostEq(simple.Slope, multi.Coeffs[1], 1e-6) {
		t.Errorf("simple %+v vs multi %+v", simple, multi)
	}
}
