package analysis

import (
	"go/ast"
)

// WgDiscipline pins the sync.WaitGroup idiom the runtime race detector
// only catches when the race actually fires: Add happens-before the `go`
// statement, Done runs via defer. The failure modes are classic —
// `wg.Add(1)` as the first line *inside* the goroutine races Wait (Wait
// can return before the goroutine is scheduled, then Add panics or the
// work is silently unwaited), and a bare trailing `wg.Done()` is skipped
// by any panic or early return added later, stranding Wait forever.
//
// Two shapes are findings:
//
//   - a WaitGroup Add lexically inside a function literal spawned by a
//     `go` statement,
//   - a WaitGroup Done called as a plain statement rather than deferred.
var WgDiscipline = &Analyzer{
	Name: "wgdiscipline",
	Doc: "WaitGroup.Add must precede the go statement (never run inside " +
		"the spawned body) and Done must be deferred",
	Run: runWgDiscipline,
}

func runWgDiscipline(pass *Pass) {
	for _, f := range pass.Files {
		// Pass 1: Adds inside spawned literals.
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if _, ok := m.(*ast.GoStmt); ok {
					return false // a nested spawn is its own site
				}
				call, ok := m.(*ast.CallExpr)
				if ok && isWaitGroupCall(pass, call, "Add") {
					pass.Reportf(call.Pos(),
						"WaitGroup.Add inside the spawned goroutine races Wait; Add before the go statement")
				}
				return true
			})
			return true
		})
		// Pass 2: bare Done calls.
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if ok && isWaitGroupCall(pass, call, "Done") {
				pass.Reportf(call.Pos(),
					"WaitGroup.Done as a plain call is skipped by a panic or an early return added later; defer it at the top of the goroutine")
			}
			return true
		})
	}
}
