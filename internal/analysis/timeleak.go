package analysis

import (
	"go/ast"
	"go/types"
)

// TimeLeak guards the timer lifecycle on hot paths. time.After and
// time.Tick allocate a timer the caller can never stop: harmless once,
// but inside a loop every iteration leaks one until it fires — and
// time.Tick's never fires free. The serving stack runs retry and
// write-stall loops at request rate, where the sanctioned idiom is a
// single time.NewTimer/NewTicker outside the loop with a deferred Stop
// (see Gateway.sweep and the drain-grace timer in flush).
var TimeLeak = &Analyzer{
	Name: "timeleak",
	Doc: "no time.After or time.Tick inside a loop; hoist a " +
		"NewTimer/NewTicker with a deferred Stop instead",
	Run: runTimeLeak,
}

func runTimeLeak(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := timerFactory(pass, call); ok {
					pass.Reportf(call.Pos(),
						"time.%s inside a loop leaks one timer per iteration; hoist a time.New%s before the loop and defer its Stop",
						name, newName(name))
				}
				return true
			})
			// The inner walk covered this subtree, nested loops included
			// (a call inside two loops still leaks per iteration and is
			// reported once).
			return false
		})
	}
}

// timerFactory matches time.After / time.Tick calls.
func timerFactory(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "time" {
		return "", false
	}
	if sel.Sel.Name == "After" || sel.Sel.Name == "Tick" {
		return sel.Sel.Name, true
	}
	return "", false
}

// newName maps the leaking helper to its stoppable counterpart.
func newName(factory string) string {
	if factory == "Tick" {
		return "Ticker"
	}
	return "Timer"
}
