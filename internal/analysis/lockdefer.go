package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockDefer guards the lock discipline on multi-exit functions: a
// mutex Lock must be released by an immediate defer, or by a matching
// Unlock reachable on a straight line — no return, branch, or
// conditional between acquisition and release. Anything else (an early
// return added later between Lock and Unlock) leaks the lock on one
// path and deadlocks the next caller; the repository has 50+ mutex
// sites across the gateway, controller, and server and had zero checks
// on any of them. Deliberate cross-block locking carries a pragma with
// its justification.
var LockDefer = &Analyzer{
	Name: "lockdefer",
	Doc: "a Lock in a multi-exit function must pair with an immediate " +
		"defer Unlock or a straight-line Unlock in the same block",
	Run: runLockDefer,
}

func runLockDefer(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFuncLocks(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFuncLocks(pass, fn.Body)
			}
			return true
		})
	}
}

// checkFuncLocks analyzes one function body (excluding nested function
// literals, which are their own scopes with their own return paths).
func checkFuncLocks(pass *Pass, body *ast.BlockStmt) {
	if !isMultiExit(body) {
		return
	}
	forEachStmtList(body, func(list []ast.Stmt) {
		for i, st := range list {
			recv, kind, ok := lockStmt(pass, st)
			if !ok {
				continue
			}
			if !straightLineRelease(pass, list[i+1:], recv, kind) {
				pass.Reportf(st.Pos(),
					"%s.%s() in a function with multiple return paths has no immediate defer %s.%s() and no straight-line release; "+
						"defer the unlock or pragma the site with a justification",
					recv, kind, recv, unlockName(kind))
			}
		}
	})
}

// isMultiExit reports whether the function body has more than one exit
// path: two or more explicit returns, or an explicit return plus
// falling off the end.
func isMultiExit(body *ast.BlockStmt) bool {
	returns := 0
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if _, ok := n.(*ast.ReturnStmt); ok {
			returns++
		}
		return true
	})
	if returns >= 2 {
		return true
	}
	if returns == 1 {
		if len(body.List) == 0 {
			return true
		}
		_, endsInReturn := body.List[len(body.List)-1].(*ast.ReturnStmt)
		return !endsInReturn
	}
	return false
}

// forEachStmtList visits every statement list in the body — block
// bodies, case clauses, comm clauses — skipping nested function
// literals.
func forEachStmtList(body *ast.BlockStmt, visit func([]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			visit(b.List)
		case *ast.CaseClause:
			visit(b.Body)
		case *ast.CommClause:
			visit(b.Body)
		}
		return true
	})
}

// lockStmt matches an ExprStmt of the form recv.Lock() or recv.RLock()
// on a sync mutex (including one reached through an embedded field or a
// sync.Locker), returning the receiver's printed form and the method
// name.
func lockStmt(pass *Pass, st ast.Stmt) (recv, kind string, ok bool) {
	es, isExpr := st.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, name, isSync := syncMethod(pass, call)
	if !isSync || (name != "Lock" && name != "RLock") {
		return "", "", false
	}
	return types.ExprString(sel.X), name, true
}

// syncMethod reports whether the call is a method of package sync,
// returning the selector and method name.
func syncMethod(pass *Pass, call *ast.CallExpr) (*ast.SelectorExpr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	selInfo, ok := pass.Info.Selections[sel]
	if !ok {
		return nil, "", false
	}
	obj := selInfo.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil, "", false
	}
	return sel, obj.Name(), true
}

// straightLineRelease scans the statements after the lock for a
// matching release before anything that could divert control flow. A
// `defer recv.Unlock()` anywhere on the straight line is a release (the
// idiomatic form is the very next statement); so is a plain
// `recv.Unlock()`. A return, branch, loop, conditional, or the end of
// the block without a release means a path can escape with the lock
// held — or come to depend on one doing so the next time the function
// is edited.
func straightLineRelease(pass *Pass, rest []ast.Stmt, recv, kind string) bool {
	want := unlockName(kind)
	for _, st := range rest {
		switch s := st.(type) {
		case *ast.DeferStmt:
			if matchesRelease(pass, s.Call, recv, want) {
				return true
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && matchesRelease(pass, call, recv, want) {
				return true
			}
		case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt, *ast.EmptyStmt:
			// Straight-line statements: keep scanning.
		default:
			// A compound statement (if/for/range/switch/select) keeps
			// the line straight only if control provably comes out the
			// other side with the lock state unchanged: no return, no
			// goto or labeled branch, and no conditional release
			// hiding inside a branch.
			if divertsControl(pass, st, recv, want) {
				return false
			}
		}
	}
	return false
}

// divertsControl reports whether the statement could exit the function,
// jump away, or release the lock on only some paths — any of which
// breaks the straight-line argument and demands a deferred unlock (or a
// pragma) instead.
func divertsControl(pass *Pass, st ast.Stmt, recv, want string) bool {
	diverts := false
	ast.Inspect(st, func(n ast.Node) bool {
		if diverts {
			return false
		}
		switch m := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt, *ast.LabeledStmt:
			diverts = true
			return false
		case *ast.BranchStmt:
			// break/continue stay inside the compound statement unless
			// labeled; goto can land anywhere.
			if m.Tok == token.GOTO || m.Label != nil {
				diverts = true
				return false
			}
		case *ast.CallExpr:
			if matchesRelease(pass, m, recv, want) {
				diverts = true // conditional release: not straight-line
				return false
			}
		}
		return true
	})
	return diverts
}

// matchesRelease reports whether the call is recv.<want>() on a sync
// method with the same printed receiver.
func matchesRelease(pass *Pass, call *ast.CallExpr, recv, want string) bool {
	sel, name, ok := syncMethod(pass, call)
	if !ok || name != want {
		return false
	}
	return types.ExprString(sel.X) == recv
}

func unlockName(kind string) string {
	if kind == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}
