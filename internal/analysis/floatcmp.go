package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp forbids `==` and `!=` between two computed floating-point
// expressions in shipped code. After rounding, two mathematically equal
// float expressions rarely compare equal — equality tests belong in
// _test.go files, where bit-identity is exactly the property the
// equivalence suites assert (stream ≡ batch, prepared ≡ legacy, file ≡
// socket). Comparison against a compile-time constant is exempt: a
// sentinel or guard check (`if frac == 0`, `cfg.Tolerance == 0`) tests
// whether the variable still holds an exactly-representable value it
// was assigned, not whether two rounded computations coincide. Where
// shipped code genuinely needs bit-equality between computed values
// (deterministic tie-breaks, convergence fixed points, cache keys), the
// site carries a pragma explaining why exactness is intended.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "forbid ==/!= between computed floating-point expressions " +
		"outside tests (constant sentinel checks are exempt)",
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatType(pass.Info.TypeOf(be.X)) && !isFloatType(pass.Info.TypeOf(be.Y)) {
				return true
			}
			if isConstExpr(pass, be.X) || isConstExpr(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison between computed values; use a tolerance, or pragma the site if bit-equality is intended",
				be.Op)
			return true
		})
	}
}

// isConstExpr reports whether the expression has a compile-time value.
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Float32, types.Float64, types.UntypedFloat:
		return true
	}
	return false
}
