package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// pragmaPrefix introduces an inline suppression comment:
//
//	//lppm:allow <analyzer>[,<analyzer>...] -- <reason>
//
// The reason is mandatory — the separator exists so every exception in
// the tree carries its justification at the site, greppable and
// reviewable. A pragma trailing a code line suppresses that line; a
// pragma standing alone on a line suppresses the line below it.
const pragmaPrefix = "lppm:allow"

// pragmaAnalyzer attributes pragma-grammar findings. It is not a real
// analyzer (it has no Run); its findings are produced by the runner and
// are deliberately not suppressible — a broken exception must not be
// able to excuse itself.
const pragmaAnalyzer = "pragma"

// pragma is one parsed, well-formed //lppm:allow comment.
type pragma struct {
	pos       token.Position
	analyzers map[string]bool
	// lines this pragma covers (its own, plus the next when standalone).
	lines map[int]bool
	used  bool
}

// pragmaSet indexes a package's pragmas by file and line.
type pragmaSet struct {
	byFile map[string][]*pragma
}

// suppress reports whether d is covered by a pragma, marking the pragma
// used. Pragma-grammar findings are never suppressible.
func (s *pragmaSet) suppress(d Diagnostic) bool {
	if d.Analyzer == pragmaAnalyzer {
		return false
	}
	for _, pr := range s.byFile[d.Pos.Filename] {
		if pr.lines[d.Pos.Line] && pr.analyzers[d.Analyzer] {
			pr.used = true
			return true
		}
	}
	return false
}

// collectPragmas parses every //lppm:allow comment in the package,
// validating the grammar against the known analyzer set. Malformed
// pragmas produce diagnostics and suppress nothing. The returned set
// must be consulted via suppress before unusedPragmaDiags is meaningful;
// runPackage sequences this.
func collectPragmas(pkg *Package, known map[string]*Analyzer) (*pragmaSet, []Diagnostic) {
	set := &pragmaSet{byFile: make(map[string][]*pragma)}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+pragmaPrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if text != "" && !strings.HasPrefix(text, " ") && !strings.HasPrefix(text, "\t") {
					// e.g. //lppm:allowx — some other marker, not ours.
					continue
				}
				names, reason, found := strings.Cut(text, " -- ")
				if !found || strings.TrimSpace(reason) == "" {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: pragmaAnalyzer,
						Message:  "malformed //lppm:allow pragma: a reason is required (`//lppm:allow <analyzer> -- <reason>`)",
					})
					continue
				}
				pr := &pragma{pos: pos, analyzers: make(map[string]bool), lines: make(map[int]bool)}
				valid := true
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					if known[name] == nil {
						diags = append(diags, Diagnostic{
							Pos:      pos,
							Analyzer: pragmaAnalyzer,
							Message:  "unknown analyzer " + quoted(name) + " in //lppm:allow pragma",
						})
						valid = false
						continue
					}
					pr.analyzers[name] = true
				}
				if !valid || len(pr.analyzers) == 0 {
					if len(pr.analyzers) == 0 && valid {
						diags = append(diags, Diagnostic{
							Pos:      pos,
							Analyzer: pragmaAnalyzer,
							Message:  "//lppm:allow pragma names no analyzer",
						})
					}
					continue
				}
				pr.lines[pos.Line] = true
				if pos.Column == 1 || standsAlone(pkg.Fset, f, c.Pos()) {
					pr.lines[pos.Line+1] = true
				}
				set.byFile[pos.Filename] = append(set.byFile[pos.Filename], pr)
			}
		}
	}
	return set, diags
}

// unusedPragmaDiags reports pragmas that suppressed nothing — stale
// exceptions that would otherwise silently outlive the violation they
// documented. Files are visited in sorted order: the caller re-sorts
// diagnostics anyway, but an analyzer package of all places must not
// itself accumulate output in map iteration order.
func (s *pragmaSet) unusedPragmaDiags() []Diagnostic {
	files := make([]string, 0, len(s.byFile))
	for f := range s.byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	var diags []Diagnostic
	for _, f := range files {
		for _, pr := range s.byFile[f] {
			if !pr.used {
				diags = append(diags, Diagnostic{
					Pos:      pr.pos,
					Analyzer: pragmaAnalyzer,
					Message:  "unused //lppm:allow pragma: no diagnostic here to suppress",
				})
			}
		}
	}
	return diags
}

// standsAlone reports whether the comment at pos is the first thing on
// its line (ignoring leading whitespace), i.e. not trailing code.
func standsAlone(fset *token.FileSet, f *ast.File, pos token.Pos) bool {
	p := fset.Position(pos)
	// Walk the file's tokens is overkill; approximate via the line
	// offset: a trailing comment always follows a node that ends on the
	// same line. Scan the file's declarations for any node ending on
	// p.Line before p.Column.
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if n.End() <= pos {
			end := fset.Position(n.End())
			if end.Line == p.Line {
				alone = false
			}
			return false
		}
		return true
	})
	return alone
}

func quoted(s string) string { return "\"" + s + "\"" }
