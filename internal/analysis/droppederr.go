package analysis

import (
	"go/ast"
	"go/types"
)

// DroppedErr is the errcheck-style analyzer: an error (or a comma-ok
// bool) produced by a call must not be discarded with `_` and a call
// returning an error must not stand as a bare statement. The repository
// joins errors on every exit path by convention — this check makes the
// convention load-bearing (the seed shipped a silently ignored
// Evaluate result and unchecked Override/NewBBox returns).
//
// Scope decisions, pinned by the golden tests:
//   - defer/go statements are exempt: deferred cleanup runs after the
//     function's outcome is decided, and the exit-path discipline
//     joins the Close errors that matter explicitly.
//   - fmt.Print/Printf/Println, and fmt.Fprint* writing to os.Stdout,
//     os.Stderr, a *strings.Builder, a *bytes.Buffer, or a
//     *tabwriter.Writer, are exempt: terminal diagnostics are
//     best-effort, in-memory writers are documented never to fail, and
//     a tabwriter only performs IO at Flush — whose error this
//     analyzer still demands be checked.
//   - write methods called directly on strings.Builder and
//     bytes.Buffer are exempt for the same reason; so are
//     io.PipeWriter/io.PipeReader Close and CloseWithError, which are
//     documented to always return nil.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc: "forbid _-discarded or wholly ignored error (and comma-ok bool) " +
		"returns from calls outside tests",
	Run: runDroppedErr,
}

func runDroppedErr(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				// Exempt the call itself, but keep inspecting its
				// arguments and any function-literal body.
				var call *ast.CallExpr
				if d, ok := st.(*ast.DeferStmt); ok {
					call = d.Call
				} else {
					call = st.(*ast.GoStmt).Call
				}
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool { return inspectDropped(pass, m) })
				}
				ast.Inspect(call.Fun, func(m ast.Node) bool { return inspectDropped(pass, m) })
				return false
			}
			return inspectDropped(pass, n)
		})
	}
}

// inspectDropped handles one node of the walk; split out so the
// defer/go exemption can re-enter the walk below the exempted call.
func inspectDropped(pass *Pass, n ast.Node) bool {
	switch st := n.(type) {
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if exemptCall(pass, call) {
			return true
		}
		if idx := errorResultIndex(pass, call); idx >= 0 {
			pass.Reportf(st.Pos(), "result of %s returns an error that is ignored", calleeName(pass, call))
		}
	case *ast.AssignStmt:
		checkAssignDiscards(pass, st)
	}
	return true
}

// checkAssignDiscards flags `_`-bound error or comma-ok bool results on
// the statement's blank identifiers.
func checkAssignDiscards(pass *Pass, st *ast.AssignStmt) {
	// Tuple form: x, _ := f().
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok || exemptCall(pass, call) {
			return
		}
		tup, ok := pass.Info.TypeOf(call).(*types.Tuple)
		if !ok || tup.Len() != len(st.Lhs) {
			return
		}
		for i, lhs := range st.Lhs {
			if !isBlank(lhs) {
				continue
			}
			rt := tup.At(i).Type()
			switch {
			case isErrorType(rt):
				pass.Reportf(lhs.Pos(), "error result of %s discarded with _", calleeName(pass, call))
			case i == tup.Len()-1 && isBoolType(rt):
				pass.Reportf(lhs.Pos(), "comma-ok result of %s discarded with _; handle the failure case", calleeName(pass, call))
			}
		}
		return
	}
	// Parallel form: _, _ = f(), g().
	if len(st.Rhs) != len(st.Lhs) {
		return
	}
	for i, lhs := range st.Lhs {
		if !isBlank(lhs) {
			continue
		}
		call, ok := st.Rhs[i].(*ast.CallExpr)
		if !ok || exemptCall(pass, call) {
			continue
		}
		if isErrorType(pass.Info.TypeOf(call)) {
			pass.Reportf(lhs.Pos(), "error result of %s discarded with _", calleeName(pass, call))
		}
	}
}

// errorResultIndex returns the index of the first error in the call's
// result tuple, or -1.
func errorResultIndex(pass *Pass, call *ast.CallExpr) int {
	switch t := pass.Info.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
	default:
		if t != nil && isErrorType(t) {
			return 0
		}
	}
	return -1
}

// infallibleMethods maps a named type to the methods whose error (or
// nil) result carries no failure signal: in-memory writers documented
// never to fail, and pipe closes documented to always return nil.
var infallibleMethods = map[string]map[string]bool{
	"strings.Builder":       {"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true},
	"bytes.Buffer":          {"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true},
	"io.PipeWriter":         {"Close": true, "CloseWithError": true},
	"io.PipeReader":         {"Close": true},
	"text/tabwriter.Writer": {"Write": true},
}

// exemptCall applies the documented allowances: best-effort terminal
// printing, infallible in-memory writers, and always-nil pipe closes.
func exemptCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-level fmt printers.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			switch sel.Sel.Name {
			case "Print", "Printf", "Println":
				return true
			case "Fprint", "Fprintf", "Fprintln":
				return len(call.Args) > 0 && exemptWriter(pass, call.Args[0])
			}
			return false
		}
	}
	// Infallible methods, looked up by receiver type.
	if selInfo, ok := pass.Info.Selections[sel]; ok {
		if methods := infallibleMethods[namedTypeKey(selInfo.Recv())]; methods != nil {
			return methods[sel.Sel.Name]
		}
	}
	return false
}

// exemptWriter reports whether the fmt.Fprint* destination is exempt:
// os.Stdout/os.Stderr (best-effort terminal), or a writer that cannot
// fail on Write (strings.Builder, bytes.Buffer, tabwriter.Writer —
// whose IO errors surface at the Flush this analyzer checks).
func exemptWriter(pass *Pass, e ast.Expr) bool {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "os" {
				if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
					return true
				}
			}
		}
	}
	switch namedTypeKey(pass.Info.TypeOf(e)) {
	case "strings.Builder", "bytes.Buffer", "text/tabwriter.Writer":
		return true
	}
	return false
}

// namedTypeKey renders a (possibly pointer-wrapped) named type as
// "pkgpath.Name", or "" when the type is not named.
func namedTypeKey(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// calleeName renders the called function for the message.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}
