// Package analysis is the repository's project-invariant linter: a
// stdlib-only static-analysis suite (go/parser, go/types, go/importer —
// no external analysis framework) whose analyzers machine-check the
// disciplines this codebase established by hand and has regressed on
// before — deterministic randomness through internal/rng, sorted-order
// floating-point accumulation, no silently dropped errors, deferred
// unlocks on multi-exit functions, no exact float comparison — and,
// since the concurrency pass, the serving stack's lifecycle invariants:
// goroutine termination paths, context plumbing, no blocking sends
// under locks, WaitGroup ordering, and timer hygiene in loops (the
// static half of the split documented in DESIGN.md §11; the runtime
// half is internal/leakcheck).
//
// Each analyzer targets a bug class that actually shipped here (see
// DESIGN.md §10 for the provenance). Intentional violations are
// suppressed at the site with a pragma that requires a written reason:
//
//	//lppm:allow <analyzer>[,<analyzer>...] -- <reason>
//
// A pragma suppresses matching diagnostics on its own line and, when it
// stands alone on a line, on the following line. A pragma with no
// reason, an unknown analyzer name, or no matching diagnostic is itself
// a finding — exceptions stay documented, named, and live.
//
// The suite analyzes shipped sources only: _test.go files are excluded
// at load time, which is also what gives floatcmp its "tests may
// bit-compare" exemption by construction.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
)

// Analyzer is one invariant checker. Run inspects a fully type-checked
// package and reports findings through the pass.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and pragmas.
	Name string
	// Doc is a one-paragraph description: the invariant and the shipped
	// bug class it guards against.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package's import path; analyzers that scope by layer
	// (detrand's deterministic-package list) key off it.
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the suite's analyzers in name order. Every analyzer listed
// here must have a golden-file test under testdata/<name>; `lppm-lint
// -list` enforces that coupling.
func All() []*Analyzer {
	return []*Analyzer{
		CtxFlow,
		DetRand,
		DroppedErr,
		FloatCmp,
		GoroLeak,
		LockDefer,
		MapOrder,
		SendLock,
		TimeLeak,
		WgDiscipline,
	}
}

// byName resolves analyzer names for pragma validation.
func byName(analyzers []*Analyzer) map[string]*Analyzer {
	m := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		m[a.Name] = a
	}
	return m
}

// Run executes the analyzers over the packages, applies pragma
// suppression, and returns the surviving diagnostics sorted by position.
// Pragma-grammar violations (missing reason, unknown analyzer, unused
// pragma) are appended as findings of the pseudo-analyzer "pragma" and
// cannot themselves be suppressed.
//
// Packages are analyzed with up to jobs workers (jobs <= 0 means
// GOMAXPROCS). Analyzers only read their Pass, each package's findings
// land in its own slot, and the final sort erases scheduling order, so
// the output is identical at every jobs value.
func Run(pkgs []*Package, analyzers []*Analyzer, jobs int) []Diagnostic {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	perPkg := make([][]Diagnostic, len(pkgs))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perPkg[i] = runPackage(pkg, analyzers)
		}()
	}
	wg.Wait()
	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sortDiagnostics(diags)
	return diags
}

// runPackage runs every analyzer over one package and filters the
// findings through the package's pragmas.
func runPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			report:   func(d Diagnostic) { raw = append(raw, d) },
		}
		a.Run(pass)
	}
	pragmas, pragmaDiags := collectPragmas(pkg, byName(analyzers))
	kept := raw[:0]
	for _, d := range raw {
		if !pragmas.suppress(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, pragmaDiags...)
	return append(kept, pragmas.unusedPragmaDiags()...)
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
