package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder is the PR-3 regression class, generalized: Go randomizes map
// iteration order, so a `range` over a map whose body accumulates
// floating-point values into an outer variable, or collects keys that
// are never subsequently sorted, produces run-to-run drift — exactly
// how the heat-map JSD and cell-entropy metrics came to differ across
// replays until PR 3 rewrote them to sum in sorted cell order. The
// sanctioned idiom passes: collect the keys, sort them, range over the
// sorted slice (which is no longer a map range).
//
// Keyed element-wise writes (`m[k] /= n` inside `range m`) are
// order-independent and exempt; so is a collected slice that a later
// statement in the same function visibly sorts (a call into sort/
// slices, or any callee whose name contains "sort", receiving the
// slice).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "forbid float accumulation or unsorted key collection in map " +
		"iteration order",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		// Map each range statement to its enclosing function body so
		// the sorted-later exemption can scan the statements after it.
		var funcStack []*ast.BlockStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.FuncDecl:
				if nn.Body == nil {
					return false
				}
				funcStack = append(funcStack, nn.Body)
				ast.Inspect(nn.Body, walk)
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.FuncLit:
				funcStack = append(funcStack, nn.Body)
				ast.Inspect(nn.Body, walk)
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.RangeStmt:
				var encl *ast.BlockStmt
				if len(funcStack) > 0 {
					encl = funcStack[len(funcStack)-1]
				}
				checkMapRange(pass, nn, encl)
			}
			return true
		}
		ast.Inspect(f, walk)
	}
}

// checkMapRange analyzes one range statement, if it ranges over a map.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, encl *ast.BlockStmt) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(as.Lhs) == 1 && isOrderSensitiveAccumulator(pass, as.Lhs[0], rs) {
				pass.Reportf(as.Pos(),
					"floating-point accumulation into %s in map iteration order; collect and sort the keys first",
					types.ExprString(as.Lhs[0]))
			}
		case token.ASSIGN:
			for i, lhs := range as.Lhs {
				if i < len(as.Rhs) && isAppendTo(pass, lhs, as.Rhs[i]) {
					if !sortedLater(pass, lhs, rs, encl) {
						pass.Reportf(as.Pos(),
							"%s collects map keys in iteration order and is never sorted afterwards; sort it before use",
							types.ExprString(lhs))
					}
					continue
				}
				if i < len(as.Rhs) && isOrderSensitiveAccumulator(pass, lhs, rs) && mentions(as.Rhs[i], lhs) {
					pass.Reportf(as.Pos(),
						"floating-point accumulation into %s in map iteration order; collect and sort the keys first",
						types.ExprString(lhs))
				}
			}
		}
		return true
	})
}

// isOrderSensitiveAccumulator reports whether lhs is a float-typed
// accumulator declared outside the range statement. Indexed writes are
// exempt: `m[k] op= v` touches each key once, in any order.
func isOrderSensitiveAccumulator(pass *Pass, lhs ast.Expr, rs *ast.RangeStmt) bool {
	if !isFloatType(pass.Info.TypeOf(lhs)) {
		return false
	}
	switch l := lhs.(type) {
	case *ast.Ident:
		obj := pass.Info.ObjectOf(l)
		if obj == nil {
			return false
		}
		return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
	case *ast.SelectorExpr:
		// A field of an outer struct is an outer accumulator.
		return true
	}
	return false
}

// isAppendTo reports whether the assignment is `lhs = append(lhs, ...)`.
func isAppendTo(pass *Pass, lhs, rhs ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if b, ok := pass.Info.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	return types.ExprString(call.Args[0]) == types.ExprString(lhs)
}

// sortedLater reports whether a statement after the range, in the same
// enclosing function, passes the collected slice to a sorting call — a
// call into package sort or slices, or any callee whose name contains
// "sort" (covering local helpers like sortCells).
func sortedLater(pass *Pass, slice ast.Expr, rs *ast.RangeStmt, encl *ast.BlockStmt) bool {
	if encl == nil {
		return false
	}
	want := types.ExprString(slice)
	sorted := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			s := types.ExprString(arg)
			if s == want || s == "&"+want {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// isSortCall recognizes sorting callees by package (sort, slices) or by
// name (anything containing "sort", case-insensitive).
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
				p := pn.Imported().Path()
				if p == "sort" || p == "slices" {
					return true
				}
			}
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	}
	return false
}

// mentions reports whether expr syntactically contains target (by
// printed form) — `sum = sum + v` style accumulation.
func mentions(expr, target ast.Expr) bool {
	want := types.ExprString(target)
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == want {
			found = true
			return false
		}
		return true
	})
	return found
}
