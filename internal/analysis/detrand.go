package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// DeterministicPackages lists the layers whose output must be a pure
// function of the master seed: the mechanisms, metrics, evaluation
// engine, and everything below them. The serving layers (service,
// server, cmd) legitimately read the wall clock, and internal/rng is
// the one sanctioned math/rand wrapper.
var DeterministicPackages = []string{
	"repro/internal/alp",
	"repro/internal/attack",
	"repro/internal/core",
	"repro/internal/eval",
	"repro/internal/geo",
	"repro/internal/linalg",
	"repro/internal/lppm",
	"repro/internal/metrics",
	"repro/internal/poi",
	"repro/internal/stat",
	"repro/internal/synth",
	"repro/internal/trace",
}

// wallClockFuncs are the time package entry points that read the wall
// clock. Durations, formatting, and arithmetic on timestamps already in
// the data are fine; fresh readings are not reproducible from a seed.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// DetRand enforces the repository's first invariant: in deterministic
// packages all randomness routes through internal/rng and nothing reads
// the wall clock. Both bug classes shipped once — results that change
// across runs are unfalsifiable, and the bit-identical-replay contract
// (rng.Source Pos/SeekTo, stream ≡ batch) silently breaks the moment a
// mechanism draws from a global generator.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid math/rand and wall-clock reads in deterministic packages; " +
		"all randomness must route through repro/internal/rng",
	Run: runDetRand,
}

// isDeterministicPackage reports whether path falls under the
// deterministic layer list (a listed package or any subpackage of one).
func isDeterministicPackage(path string) bool {
	for _, p := range DeterministicPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runDetRand(pass *Pass) {
	if !isDeterministicPackage(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			ip, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if ip == "math/rand" || ip == "math/rand/v2" {
				pass.Reportf(spec.Pos(),
					"deterministic package %s imports %s; draw from repro/internal/rng instead",
					pass.Path, ip)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if wallClockFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"deterministic package %s reads the wall clock via time.%s; results must be a pure function of the seed",
					pass.Path, sel.Sel.Name)
			}
			return true
		})
	}
}
