package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path
	Dir   string // directory, relative to the module root
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// stdImporter lazily builds the shared source-mode importer for
// out-of-module (standard library) dependencies. Source mode type-checks
// GOROOT packages from source, so the tool needs no pre-built export
// data; cgo is disabled first so packages like net resolve to their pure
// Go variants instead of requiring a C toolchain.
//
// The source importer is NOT safe for concurrent use (it mutates an
// internal package cache), so every call goes through stdImporterMu.
// Module packages type-checked in parallel therefore serialize only on
// their first std-lib imports; repeats are cache hits.
var (
	stdImporterMu sync.Mutex
	stdImporter   = sync.OnceValue(func() types.ImporterFrom {
		build.Default.CgoEnabled = false
		return importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom)
	})
)

// LoadModule parses and type-checks every non-test package under the
// module rooted at (or above) dir. _test.go files are excluded: the
// suite audits shipped code, and test-only idioms (bit-exact float
// comparison, wall-clock timeouts) are legitimate there.
//
// Type-checking runs with up to jobs workers (jobs <= 0 means
// GOMAXPROCS): the import graph is cut into topological levels, and
// every package within a level — by construction mutually independent —
// checks concurrently. token.FileSet is documented concurrency-safe,
// each worker owns its types.Info, and the shared importer guards its
// two mutable structures (the done map, the std importer) itself.
func LoadModule(dir string, jobs int) ([]*Package, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	parsed, err := parseModule(fset, root, modPath)
	if err != nil {
		return nil, err
	}
	levels, err := topoLevels(parsed)
	if err != nil {
		return nil, err
	}
	imp := &moduleImporter{module: modPath, done: make(map[string]*types.Package)}
	var pkgs []*Package
	for _, level := range levels {
		results := make([]*Package, len(level))
		errs := make([]error, len(level))
		sem := make(chan struct{}, jobs)
		var wg sync.WaitGroup
		for i, pp := range level {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				info := newInfo()
				conf := types.Config{Importer: imp}
				tpkg, err := conf.Check(pp.path, fset, pp.files, info)
				if err != nil {
					errs[i] = fmt.Errorf("type-checking %s: %w", pp.path, err)
					return
				}
				results[i] = &Package{
					Path:  pp.path,
					Dir:   pp.dir,
					Fset:  fset,
					Files: pp.files,
					Pkg:   tpkg,
					Info:  info,
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		// Publish the level's results only after the barrier, keeping
		// the done map free of half-checked packages.
		for _, r := range results {
			imp.add(r.Path, r.Pkg)
			pkgs = append(pkgs, r)
		}
	}
	return pkgs, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// moduleImporter serves already-checked module packages and delegates
// everything else to the shared source importer. Safe for use from
// concurrent type-check workers: done is RWMutex-guarded, and std-lib
// delegation serializes on stdImporterMu.
type moduleImporter struct {
	module string
	mu     sync.RWMutex
	done   map[string]*types.Package
}

func (m *moduleImporter) add(path string, pkg *types.Package) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done[path] = pkg
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	m.mu.RLock()
	p, ok := m.done[path]
	m.mu.RUnlock()
	if ok {
		return p, nil
	}
	if path == m.module || strings.HasPrefix(path, m.module+"/") {
		return nil, fmt.Errorf("module package %s imported before it was checked (import cycle?)", path)
	}
	stdImporterMu.Lock()
	defer stdImporterMu.Unlock()
	return stdImporter().ImportFrom(path, dir, mode)
}

// findModule walks upward from dir to the enclosing go.mod and returns
// the module root and path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			mp := parseModulePath(data)
			if mp == "" {
				return "", "", fmt.Errorf("no module path in %s", filepath.Join(d, "go.mod"))
			}
			return d, mp, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found at or above %s", abs)
		}
		d = parent
	}
}

// parseModulePath extracts the module path from go.mod contents.
func parseModulePath(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// parsedPkg is a package after parsing, before type-checking.
type parsedPkg struct {
	path    string
	dir     string // relative to module root
	files   []*ast.File
	imports map[string]bool // module-internal imports only
}

// parseModule walks the module tree and parses every non-test package.
// testdata, vendor, and hidden directories are skipped, matching the go
// tool's own convention.
func parseModule(fset *token.FileSet, root, modPath string) (map[string]*parsedPkg, error) {
	pkgs := make(map[string]*parsedPkg)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		pp := pkgs[importPath]
		if pp == nil {
			pp = &parsedPkg{path: importPath, dir: rel, imports: make(map[string]bool)}
			pkgs[importPath] = pp
		}
		pp.files = append(pp.files, f)
		for _, spec := range f.Imports {
			ip, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
				pp.imports[ip] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Deterministic file order within each package (WalkDir is sorted,
	// but make the invariant explicit rather than inherited).
	for _, pp := range pkgs {
		sort.Slice(pp.files, func(i, j int) bool {
			return fset.File(pp.files[i].Pos()).Name() < fset.File(pp.files[j].Pos()).Name()
		})
	}
	return pkgs, nil
}

// topoLevels stratifies packages by import depth: level 0 holds
// packages with no module-internal imports, level n+1 holds packages
// whose deepest module dependency sits at level n. Every package within
// a level is independent of its level-mates, so a level is exactly the
// unit of safe type-check parallelism. Packages are path-sorted within
// each level for a deterministic overall order.
func topoLevels(pkgs map[string]*parsedPkg) ([][]*parsedPkg, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	depth := make(map[string]int)
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p string) (int, error)
	visit = func(p string) (int, error) {
		switch state[p] {
		case 1:
			return 0, fmt.Errorf("import cycle through %s", p)
		case 2:
			return depth[p], nil
		}
		state[p] = 1
		pp := pkgs[p]
		deps := make([]string, 0, len(pp.imports))
		for d := range pp.imports {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		level := 0
		for _, d := range deps {
			if pkgs[d] == nil {
				return 0, fmt.Errorf("%s imports %s, which has no Go files in this module", p, d)
			}
			dl, err := visit(d)
			if err != nil {
				return 0, err
			}
			if dl+1 > level {
				level = dl + 1
			}
		}
		state[p] = 2
		depth[p] = level
		return level, nil
	}
	maxLevel := -1
	for _, p := range paths {
		l, err := visit(p)
		if err != nil {
			return nil, err
		}
		if l > maxLevel {
			maxLevel = l
		}
	}
	levels := make([][]*parsedPkg, maxLevel+1)
	for _, p := range paths {
		levels[depth[p]] = append(levels[depth[p]], pkgs[p])
	}
	return levels, nil
}
