package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak guards goroutine termination: every `go` statement in shipped
// code must carry visible evidence that the spawned goroutine can end.
// The serving stack (gateway shards, dispatcher, controller loop, stream
// owners) is built from long-lived goroutines, and the bug class it is
// about to grow into — multi-node tiers, checkpoint replay — is a worker
// that outlives its owner because nothing ever tells it to stop.
//
// Accepted termination evidence, checked over the spawned body (nested
// function literals included, nested `go` statements excluded — they are
// their own spawn sites):
//
//   - a `select` with at least one receive case (the ctx.Done()/quit
//     channel pattern; a timer or output channel works the same way),
//   - a `defer wg.Done()` on a sync.WaitGroup — the body is tracked and
//     someone owns its completion,
//   - otherwise, a body whose loops are all bounded (a condition or a
//     range clause, including range-over-channel, which ends at close)
//     and whose channel sends cannot block forever.
//
// Without such evidence, two shapes are findings: an unbounded `for {}`
// with no return or break (the goroutine can never end), and an
// unconditional blocking send outside a select (the goroutine strands the
// moment its receiver is gone — the naked `go func() { ch <- f() }`
// shape). A send on a channel visibly created with a capacity in the
// same package (`make(chan T, n)`) is exempt: the result-channel idiom
// sizes the buffer to the send count precisely so the sender can exit
// unreceived.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "every go statement needs a visible termination path: a select " +
		"on a quit/ctx channel, a WaitGroup-tracked body, or bounded loops " +
		"with non-stranding sends",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	decls := indexFuncDecls(pass)
	buffered := indexBufferedChans(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := spawnedBody(pass, g, decls)
			if body == nil {
				// An out-of-package callee (http.Server.Serve, …): its
				// body is not ours to prove; its own package carries the
				// contract.
				return true
			}
			checkGoroutine(pass, g, body, buffered)
			return true
		})
	}
}

// spawnedBody resolves the function body a go statement runs: a literal's
// body directly, a same-package function or method through its
// declaration, nil when the callee is declared elsewhere.
func spawnedBody(pass *Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	var obj types.Object
	switch fun := g.Call.Fun.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if d := decls[fn]; d != nil {
		return d.Body
	}
	return nil
}

// indexFuncDecls maps the package's function objects to their
// declarations so `go g.run(s)` resolves to run's body.
func indexFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// indexBufferedChans collects variable objects initialized from
// `make(chan T, n)` anywhere in the package — the visible-buffer evidence
// the send check consults. Only idents initialized directly from a make
// with a capacity argument qualify; a rebound or field-stored channel
// stays unproven.
func indexBufferedChans(pass *Pass) map[types.Object]bool {
	buffered := make(map[types.Object]bool)
	record := func(name *ast.Ident, rhs ast.Expr) {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" || pass.Info.Uses[id] != types.Universe.Lookup("make") {
			return
		}
		if _, ok := pass.Info.TypeOf(call).Underlying().(*types.Chan); !ok {
			return
		}
		if obj := pass.Info.Defs[name]; obj != nil {
			buffered[obj] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, st.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) != len(st.Values) {
					return true
				}
				for i, name := range st.Names {
					record(name, st.Values[i])
				}
			}
			return true
		})
	}
	return buffered
}

// checkGoroutine decides one spawn site: gather termination evidence
// first, and only without any, hunt for the stranding shapes.
func checkGoroutine(pass *Pass, g *ast.GoStmt, body *ast.BlockStmt, buffered map[types.Object]bool) {
	hasSelectRecv, wgTracked := false, false
	walkSpawned(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.SelectStmt:
			if selectHasReceive(st) {
				hasSelectRecv = true
			}
		case *ast.DeferStmt:
			if isWaitGroupCall(pass, st.Call, "Done") {
				wgTracked = true
			}
		}
	})
	if hasSelectRecv || wgTracked {
		return
	}
	walkSpawned(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ForStmt:
			if st.Cond == nil && !loopHasExit(st.Body) {
				pass.Reportf(g.Pos(),
					"goroutine runs an unbounded for loop with no return or break and no select on a quit/ctx channel; give it a termination path or pragma the spawn with a justification")
			}
		case *ast.SendStmt:
			if id, ok := st.Chan.(*ast.Ident); ok {
				obj := pass.Info.Uses[id]
				if obj == nil {
					obj = pass.Info.Defs[id]
				}
				if buffered[obj] {
					return
				}
			}
			pass.Reportf(g.Pos(),
				"goroutine performs an unconditional blocking send on %s with no visible buffer or termination path; it strands forever once the receiver is gone",
				types.ExprString(st.Chan))
		}
	})
}

// walkSpawned visits the spawned body, descending into nested function
// literals (they run on this goroutine unless spawned again) but not into
// nested go statements. Select comm clauses' own send/receive statements
// are skipped: they are guarded by the select's other cases and must not
// be judged as bare operations.
func walkSpawned(body *ast.BlockStmt, visit func(ast.Node)) {
	guarded := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					guarded[cc.Comm] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		if n == nil || guarded[n] {
			return true
		}
		visit(n)
		return true
	})
}

// selectHasReceive reports whether any comm clause receives — the shape
// of a ctx.Done()/quit-channel exit (default-only or send-only selects
// prove nothing about termination).
func selectHasReceive(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if isReceiveExpr(comm.X) {
				return true
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 && isReceiveExpr(comm.Rhs[0]) {
				return true
			}
		}
	}
	return false
}

func isReceiveExpr(e ast.Expr) bool {
	u, ok := e.(*ast.UnaryExpr)
	return ok && u.Op == token.ARROW
}

// loopHasExit reports whether an unbounded loop body can leave the loop:
// a return or goto anywhere (they exit regardless of nesting), a labeled
// break (it names its target), or an unlabeled break not captured first
// by an inner loop, switch, or select. Nested function literals don't
// count — their control flow is their own.
func loopHasExit(body *ast.BlockStmt) bool {
	exit := false
	ast.Inspect(body, func(n ast.Node) bool {
		if exit {
			return false
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			exit = true
			return false
		case *ast.BranchStmt:
			if st.Tok == token.GOTO || (st.Tok == token.BREAK && st.Label != nil) {
				exit = true
				return false
			}
		}
		return true
	})
	if exit {
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if exit {
			return false
		}
		switch st := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// An unlabeled break inside these targets them, not our loop.
			return false
		case *ast.BranchStmt:
			if st.Tok == token.BREAK {
				exit = true
				return false
			}
		}
		return true
	})
	return exit
}

// isWaitGroupCall reports whether the call is sync.WaitGroup.<name>.
func isWaitGroupCall(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, method, ok := syncMethod(pass, call)
	if !ok || method != name {
		return false
	}
	if selInfo, ok := pass.Info.Selections[sel]; ok {
		return namedTypeKey(selInfo.Recv()) == "sync.WaitGroup"
	}
	return false
}
