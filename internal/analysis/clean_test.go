package analysis

import "testing"

// TestRepositoryLintClean locks in the zero-findings state: `go test`
// itself fails the moment a change introduces an unsuppressed violation
// of any suite invariant, with the same diagnostics lppm-lint would
// print. Deliberate exceptions belong at the site as
// `//lppm:allow <analyzer> -- <reason>` pragmas.
func TestRepositoryLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := LoadModule(".", 0)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range Run(pkgs, All(), 0) {
		t.Errorf("%s", d)
	}
}
