package analysis

import "testing"

// Each analyzer's golden directory is run through the same
// runPackage/pragma pipeline lppm-lint uses. detrand is path-scoped, so
// its directory is loaded twice: once as a deterministic package (the
// findings fire) and once as the serving layer (silence).

func TestDetRandGolden(t *testing.T) {
	runGolden(t, DetRand, "testdata/detrand", "repro/internal/synth")
}

func TestDetRandExemptsServingLayer(t *testing.T) {
	runGoldenExpectNone(t, DetRand, "testdata/detrand", "repro/internal/server")
}

func TestDroppedErrGolden(t *testing.T) {
	runGolden(t, DroppedErr, "testdata/droppederr", "repro/internal/droppedtest")
}

func TestFloatCmpGolden(t *testing.T) {
	runGolden(t, FloatCmp, "testdata/floatcmp", "repro/internal/floatcmptest")
}

func TestLockDeferGolden(t *testing.T) {
	runGolden(t, LockDefer, "testdata/lockdefer", "repro/internal/lockdefertest")
}

func TestMapOrderGolden(t *testing.T) {
	runGolden(t, MapOrder, "testdata/maporder", "repro/internal/maptest")
}

// Concurrency pass (PR 7). ctxflow's package-main exemption is pinned
// by loading a main package from the mainpkg subdirectory and
// expecting silence.

func TestGoroLeakGolden(t *testing.T) {
	runGolden(t, GoroLeak, "testdata/goroleak", "repro/internal/goroleaktest")
}

func TestCtxFlowGolden(t *testing.T) {
	runGolden(t, CtxFlow, "testdata/ctxflow", "repro/internal/ctxflowtest")
}

func TestCtxFlowExemptsMain(t *testing.T) {
	runGoldenExpectNone(t, CtxFlow, "testdata/ctxflow/mainpkg", "repro/cmd/ctxflowmain")
}

func TestSendLockGolden(t *testing.T) {
	runGolden(t, SendLock, "testdata/sendlock", "repro/internal/sendlocktest")
}

func TestWgDisciplineGolden(t *testing.T) {
	runGolden(t, WgDiscipline, "testdata/wgdiscipline", "repro/internal/wgtest")
}

func TestTimeLeakGolden(t *testing.T) {
	runGolden(t, TimeLeak, "testdata/timeleak", "repro/internal/timeleaktest")
}
