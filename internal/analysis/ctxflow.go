package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow guards context plumbing, the thread every lifetime in the
// serving stack hangs from. Three rules:
//
//   - A context.Context parameter comes first (after the receiver) —
//     the position is the convention that makes cancellation plumbing
//     reviewable at a glance, and a ctx buried mid-signature is the
//     first step toward one that stops being passed at all.
//   - No context.Context struct fields. A stored context outlives the
//     call that supplied it and silently decouples the holder's
//     lifetime from its caller's; the rare deliberate case (the
//     gateway, whose context *is* its lifetime and is documented as
//     such) carries a pragma with its reason.
//   - context.Background() and context.TODO() belong to package main —
//     the composition root that owns process lifetime. A library
//     package minting its own root context detaches itself from
//     whatever cancellation its caller meant to impose. (Tests are
//     exempt by construction: the suite analyzes shipped sources only.)
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "context.Context must be the first parameter and never a struct " +
		"field; Background/TODO are confined to package main",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncType:
				checkCtxParams(pass, st)
			case *ast.StructType:
				checkCtxFields(pass, st)
			case *ast.CallExpr:
				checkCtxRoot(pass, st)
			}
			return true
		})
	}
}

// checkCtxParams flags context.Context parameters that are not the
// function's first parameter. Variadic and grouped parameters count by
// their declared position.
func checkCtxParams(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies a position
		}
		if isContextType(pass, field.Type) && pos > 0 {
			pass.Reportf(field.Type.Pos(),
				"context.Context must be the first parameter, not parameter %d", pos+1)
		}
		pos += n
	}
}

// checkCtxFields flags struct fields of type context.Context.
func checkCtxFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isContextType(pass, field.Type) {
			pass.Reportf(field.Type.Pos(),
				"context.Context stored in a struct field outlives its caller's cancellation scope; pass it per call, or pragma the field with the lifetime argument")
		}
	}
}

// checkCtxRoot flags context.Background()/TODO() outside package main.
func checkCtxRoot(pass *Pass, call *ast.CallExpr) {
	if pass.Pkg.Name() == "main" {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return
	}
	if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
		pass.Reportf(call.Pos(),
			"context.%s() mints a root context outside package main; accept a ctx from the caller instead",
			sel.Sel.Name)
	}
}

// isContextType reports whether the type expression denotes
// context.Context.
func isContextType(pass *Pass, e ast.Expr) bool {
	return namedTypeKey(pass.Info.TypeOf(e)) == "context.Context"
}
