// Package fc exercises the floatcmp analyzer: exact comparison between
// computed float expressions is a finding; comparison against a
// compile-time constant (sentinel checks) and non-float comparisons are
// not.
package fc

// Two computed values compared exactly: after rounding they rarely
// coincide even when mathematically equal.
func computed(a, b float64) bool {
	return a == b // want "floatcmp: floating-point == comparison between computed values"
}

// Inequality between computed expressions is the same trap.
func notEqual(a, b float64) bool {
	return a+1 != b*2 // want "floatcmp: floating-point != comparison between computed values"
}

// Sentinel check against a literal: tests whether the variable still
// holds the exactly-representable value it was assigned. Exempt.
func sentinel(x float64) bool { return x == 0 }

const threshold = 0.5

// Comparison against a named constant is the same sentinel pattern.
func constSentinel(x float64) bool { return x != threshold }

// Non-float equality is out of scope.
func ints(a, b int) bool { return a == b }

// The sanctioned alternative: a tolerance.
func tolerant(a, b float64) bool { return abs(a-b) < 1e-9 }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Deliberate bit-equality carries its justification at the site.
func tieBreak(score, best float64) bool {
	return score == best //lppm:allow floatcmp -- golden: deterministic tie-break on bit-equal scores
}
