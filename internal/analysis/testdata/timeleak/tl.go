// Golden corpus for timeleak: timer allocation inside loops. Loaded as
// repro/internal/timeleaktest.
package timeleaktest

import (
	"context"
	"time"
)

// One timer per iteration, none ever stopped — the retry-loop shape
// that shipped in the client's health poll.
func pollLeaky(ctx context.Context, ready func() bool) error {
	for !ready() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond): // want "timeleak: time.After inside a loop leaks one timer per iteration"
		}
	}
	return nil
}

// time.Tick's timer can never be stopped at all.
func tickLeaky(work func(), done func() bool) {
	for !done() {
		<-time.Tick(time.Second) // want "timeleak: time.Tick inside a loop leaks one timer per iteration"
		work()
	}
}

// The sanctioned shape: one ticker hoisted out, deferred Stop.
func pollClean(ctx context.Context, ready func() bool) error {
	t := time.NewTicker(10 * time.Millisecond)
	defer t.Stop()
	for !ready() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	return nil
}

// A single After outside any loop is one timer, bounded.
func once(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Second):
		return 0
	}
}
