// Golden corpus for sendlock, including the reproduction of the
// gateway's shardMsg deadlock shape: a blocking send under the stage
// mutex with the cancellation escape missing. Loaded as
// repro/internal/sendlocktest.
package sendlocktest

import (
	"context"
	"sync"
)

// shardLike mirrors the gateway's shard: a shared stage guarded by a
// mutex, a bounded queue consumed by a worker that itself needs the
// mutex to finish.
type shardLike struct {
	mu sync.Mutex
	in chan []int
}

// The deadlock: under backpressure the send blocks with mu held; the
// worker draining `in` eventually needs mu (stage sweep, stats, drain
// accounting) and blocks behind it — nobody ever receives.
func (s *shardLike) ingestDeadlock(batch []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.in <- batch // want "sendlock: blocking channel send on s.in while holding s.mu"
}

// The sanctioned shape (Gateway.Ingest): a select send with a
// cancellation alternative, so the lock always unblocks.
func (s *shardLike) ingestGuarded(ctx context.Context, batch []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.in <- batch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// All-send select with no default: every case can block, so the select
// provides no escape.
func (s *shardLike) fanout(a, b chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "sendlock: select with only send cases and no default while holding s.mu"
	case a <- 1:
	case b <- 2:
	}
}

// Wait under a lock inverts the dependency: the waited-on goroutines
// may need the same lock to finish.
func (s *shardLike) waitUnder(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want "sendlock: wg.Wait while holding s.mu"
	s.mu.Unlock()
}

// A straight-line unlock ends the held region: sends after it are free.
func (s *shardLike) sendAfter(batch []int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.in <- batch
}

// A default clause is an escape (Gateway.sweep's TryLock shape).
func (s *shardLike) sweepLike() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.in <- nil:
	default:
	}
}

// Spawned bodies do not hold the caller's lock.
func (s *shardLike) spawnUnder(out chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { out <- 1 }()
}
