// Package mo exercises the maporder analyzer with the PR-3 regression
// class: floating-point sums taken in Go's randomized map iteration
// order drift across runs — exactly how the heat-map JSD and
// cell-entropy metrics differed between replays before PR 3 rewrote
// them to sum in sorted cell order.
package mo

import "sort"

type cell struct{ col, row int }

// jsdDrift is the shipped heat-map bug in miniature: divergence terms
// accumulate directly in map order, so the last bits of the result
// depend on iteration order.
func jsdDrift(p, q map[cell]float64) float64 {
	var js float64
	for c, pi := range p {
		qi := q[c]
		js += pi - qi // want "maporder: floating-point accumulation into js in map iteration order"
	}
	return js
}

// jsdSorted is the PR-3 fix shape: collect the keys, sort, accumulate
// over the sorted slice. The append inside the map range passes because
// a later statement visibly sorts the slice.
func jsdSorted(p, q map[cell]float64) float64 {
	cells := make([]cell, 0, len(p))
	for c := range p {
		cells = append(cells, c)
	}
	sortCells(cells)
	var js float64
	for _, c := range cells {
		js += p[c] - q[c]
	}
	return js
}

func sortCells(cells []cell) {
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].col != cells[j].col {
			return cells[i].col < cells[j].col
		}
		return cells[i].row < cells[j].row
	})
}

// Keys collected in map order and handed to the caller unsorted.
func keysUnsorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // want "maporder: ks collects map keys in iteration order and is never sorted"
	}
	return ks
}

// The sanctioned collect-and-sort idiom.
func keysSorted(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Keyed element-wise writes touch each key exactly once: order cannot
// matter, so normalization in place is exempt.
func normalize(m map[string]float64, n float64) {
	for k := range m {
		m[k] /= n
	}
}

// Plain-form accumulation (`x = x + v`) is the same drift.
func sumAssign(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total = total + v // want "maporder: floating-point accumulation into total"
	}
	return total
}

// A deliberately order-tolerant sum carries its justification.
func sumPragma(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v //lppm:allow maporder -- golden: order-insensitive aggregate kept to pin the pragma path
	}
	return total
}
