// Package det exercises the detrand analyzer. The golden test loads it
// as a deterministic package (repro/internal/synth), where math/rand
// imports and wall-clock reads are findings; a second load as
// repro/internal/server asserts the serving layer stays exempt.
package det

import (
	mrand "math/rand"    // want "detrand: deterministic package repro/internal/synth imports math/rand; draw from repro/internal/rng instead"
	rand2 "math/rand/v2" // want "detrand: deterministic package repro/internal/synth imports math/rand/v2"
	"time"
)

// Draw uses the global generator: unreproducible from a seed.
func Draw() float64 { return mrand.Float64() }

// Draw2 is the v2 flavor of the same violation.
func Draw2() float64 { return rand2.Float64() }

// Stamp reads the wall clock directly.
func Stamp() time.Time {
	return time.Now() // want "detrand: deterministic package repro/internal/synth reads the wall clock via time.Now"
}

// Age reads the wall clock through the Since convenience.
func Age(t time.Time) time.Duration {
	return time.Since(t) // want "detrand: .*reads the wall clock via time.Since"
}

// Later does arithmetic on a timestamp already in the data: fine.
func Later(t time.Time, d time.Duration) time.Time { return t.Add(d) }

// Elapsed compares two provided timestamps: fine.
func Elapsed(a, b time.Time) time.Duration { return b.Sub(a) }
