// Package dropped exercises the droppederr analyzer: ignored and
// _-discarded error returns, comma-ok discards, the documented
// exemptions (defer/go, terminal printing, in-memory writers), and the
// pragma grammar — including that a pragma with no reason both fails to
// suppress and is itself a finding.
package dropped

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func value() (int, error) { return 0, errors.New("boom") }

func lookup(k string) (int, bool) { return len(k), false }

// A call whose error vanishes as a bare statement.
func bare() {
	mayFail() // want "droppederr: result of mayFail returns an error that is ignored"
}

// A call whose error is discarded with the blank identifier.
func discarded() {
	_ = mayFail() // want "droppederr: error result of mayFail discarded with _"
}

// Tuple form: the value is kept, the error is not.
func tupleDiscard() int {
	v, _ := value() // want "droppederr: error result of value discarded with _"
	return v
}

// Comma-ok form: the failure case silently becomes the zero value.
func okDiscard() int {
	n, _ := lookup("k") // want "droppederr: comma-ok result of lookup discarded with _"
	return n
}

// Checked handling passes.
func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	n, ok := lookup("k")
	if !ok {
		return errors.New("missing")
	}
	_ = n
	return nil
}

// Documented exemptions: terminal printing, in-memory writers, and
// deferred cleanup after the function's outcome is decided.
func exempt(sb *strings.Builder) {
	fmt.Println("best-effort terminal output")
	fmt.Fprintf(os.Stderr, "diagnostics\n")
	fmt.Fprintf(sb, "in-memory: %d\n", 1)
	sb.WriteString("never fails")
	defer mayFail()
}

// A well-formed pragma with a reason suppresses the finding.
func pragmaSuppressed() {
	mayFail() //lppm:allow droppederr -- golden: deliberately ignored to pin the suppression path
}

// A standalone pragma covers the next line.
func pragmaStandalone() {
	//lppm:allow droppederr -- golden: standalone pragma covers the line below
	mayFail()
}

// A pragma with no reason suppresses nothing — the original finding
// survives AND the pragma itself is a finding.
func pragmaMissingReason() {
	mayFail() //lppm:allow droppederr want "droppederr: result of mayFail returns an error that is ignored" "pragma: malformed //lppm:allow pragma: a reason is required"
}

// A pragma naming an unknown analyzer is a finding and suppresses
// nothing.
func pragmaUnknown() {
	mayFail() //lppm:allow nosuchcheck -- bogus want "droppederr: result of mayFail returns an error that is ignored" "pragma: unknown analyzer .nosuchcheck."
}

// A pragma with nothing to suppress is stale and flagged.
func pragmaUnused() error {
	return mayFail() //lppm:allow droppederr -- golden: stale exception; want "pragma: unused //lppm:allow pragma"
}
