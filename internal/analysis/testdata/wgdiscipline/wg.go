// Golden corpus for wgdiscipline: Add/Done ordering around go
// statements. Loaded as repro/internal/wgtest.
package wgtest

import "sync"

// Add inside the spawned body races Wait: Wait can return before the
// goroutine is scheduled, then Add panics or the work goes unwaited.
func addInside(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want "wgdiscipline: WaitGroup.Add inside the spawned goroutine races Wait"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// A bare trailing Done is skipped by any panic or early return added
// later, stranding Wait forever.
func bareDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		work()
		wg.Done() // want "wgdiscipline: WaitGroup.Done as a plain call"
	}()
	wg.Wait()
}

// The discipline: Add before the spawn, Done deferred.
func clean(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// A nested spawn is its own site: the outer literal's Add-before-go is
// judged against the inner go statement's own rules, not the outer's.
func nested(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		inner := make(chan struct{}, 1)
		go func() { inner <- struct{}{} }()
		<-inner
	}()
	wg.Wait()
}

func work() {}
