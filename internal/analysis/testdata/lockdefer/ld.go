// Package ld exercises the lockdefer analyzer: in a function with
// multiple return paths, a mutex Lock must pair with an immediate defer
// Unlock or a straight-line release; a conditional release or an early
// return between Lock and Unlock is a finding.
package ld

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

type rbox struct {
	mu sync.RWMutex
	n  int
}

// An early return between Lock and Unlock: one path leaks the lock.
func bad(b *box, flag bool) int {
	b.mu.Lock() // want "lockdefer: b.mu.Lock.. in a function with multiple return paths"
	if flag {
		return 1
	}
	b.mu.Unlock()
	return b.n
}

// The read-lock flavor of the same leak.
func badRead(b *rbox, flag bool) int {
	b.mu.RLock() // want "lockdefer: b.mu.RLock"
	if flag {
		return 1
	}
	b.mu.RUnlock()
	return b.n
}

// The idiom: an immediate deferred unlock covers every path.
func deferred(b *box, flag bool) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if flag {
		return 1
	}
	return b.n
}

// A straight-line release before any branch is also safe.
func straightLine(b *box, flag bool) int {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	if flag {
		return 1
	}
	return n
}

// A loop between Lock and Unlock keeps the line straight as long as it
// cannot return, jump away, or release conditionally.
func loopInside(b *box, xs []int, flag bool) int {
	b.mu.Lock()
	total := 0
	for _, x := range xs {
		total += x
	}
	b.mu.Unlock()
	if flag {
		return 1
	}
	return total
}

// Single-exit functions are exempt: there is only one path to leak on,
// and the straight-through Lock/Unlock pair is the common idiom.
func singleExit(b *box) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// Deliberate per-path release carries its justification at the site.
func perPath(b *box, flag bool) int {
	b.mu.Lock() //lppm:allow lockdefer -- golden: deliberate per-path release to pin the pragma path
	if flag {
		b.mu.Unlock()
		return 1
	}
	b.mu.Unlock()
	return 0
}
