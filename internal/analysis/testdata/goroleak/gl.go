// Golden corpus for goroleak: spawn sites with and without visible
// termination paths. Loaded as repro/internal/goroleaktest.
package goroleaktest

import (
	"context"
	"sync"
)

// Naked spawn with an unconditional blocking send: the stranding shape.
func strandedSend(ch chan int) {
	go func() { // want "goroleak: .*unconditional blocking send on ch"
		ch <- 42
	}()
}

// Unbounded loop with no way out.
func spinner() {
	go func() { // want "goroleak: .*unbounded for loop with no return or break"
		for {
			work()
		}
	}()
}

// A visible buffer exempts the result-channel idiom.
func bufferedResult() chan error {
	done := make(chan error, 1)
	go func() {
		done <- work2()
	}()
	return done
}

// A select with a receive case is a termination path.
func ctxAware(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case ch <- 1:
			}
		}
	}()
}

// A WaitGroup-tracked body is owned by its Wait-er.
func tracked(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		ch <- 9
	}()
}

// Range over a channel ends at close.
func drainer(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// Named same-package functions resolve to their bodies.
func spawnNamed(ch chan int) {
	go forward(ch) // want "goroleak: .*unconditional blocking send on ch"
}

func forward(ch chan int) {
	ch <- 1
}

// An unbounded loop with a break has an exit.
func bounded(step func() bool) {
	go func() {
		for {
			if !step() {
				break
			}
		}
	}()
}

// A justified exception survives with its reason on record.
func pragmaed(ch chan int) {
	go func() { ch <- 3 }() //lppm:allow goroleak -- the contract requires the receiver to outlive this send; documented here for the golden grammar
}

func work()        {}
func work2() error { return nil }
