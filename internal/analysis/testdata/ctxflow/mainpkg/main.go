// The composition root owns process lifetime: minting the root context
// in package main is the sanctioned place, so ctxflow must stay silent
// over this whole file.
package main

import "context"

func main() {
	ctx := context.Background()
	todo := context.TODO()
	_, _ = ctx, todo
}
