// Golden corpus for ctxflow: parameter position, struct storage and its
// exemption grammar, root-context minting. Loaded as a library package
// (repro/internal/ctxflowtest); the package-main exemption is pinned by
// the mainpkg sibling directory.
package ctxflowtest

import "context"

// ctx must come first.
func lateCtx(name string, ctx context.Context) error { // want "ctxflow: context.Context must be the first parameter, not parameter 2"
	_ = name
	return ctx.Err()
}

// Interface methods obey the same convention.
type Runner interface {
	Run(name string, ctx context.Context) error // want "ctxflow: context.Context must be the first parameter, not parameter 2"
}

// A stored context decouples the holder's lifetime from its caller's.
type holder struct {
	ctx context.Context // want "ctxflow: context.Context stored in a struct field"
}

// The exemption grammar: a pragma carrying the lifetime argument.
type gatewayLike struct {
	ctx context.Context //lppm:allow ctxflow -- the context is the holder's documented lifetime; every goroutine it starts selects on it
}

// Library packages must not mint root contexts.
func mintsRoot() context.Context {
	return context.Background() // want "ctxflow: context.Background\(\) mints a root context outside package main"
}

func firstIsFine(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

func use(h holder, g gatewayLike) (context.Context, context.Context) {
	return h.ctx, g.ctx
}
