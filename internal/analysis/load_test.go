package analysis

import "testing"

// TestParallelLoadParity pins the -j contract: the stratified parallel
// loader and analyzer runner produce byte-identical results at every
// worker count. Package order is the topological-level order with paths
// sorted inside each level — a function of the import graph alone, not
// of goroutine scheduling — and diagnostics come out position-sorted.
func TestParallelLoadParity(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module twice")
	}
	serial, err := LoadModule(".", 1)
	if err != nil {
		t.Fatalf("serial load: %v", err)
	}
	parallel, err := LoadModule(".", 8)
	if err != nil {
		t.Fatalf("parallel load: %v", err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("package counts differ: %d serial, %d parallel", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Path != parallel[i].Path {
			t.Errorf("package %d: serial %s, parallel %s", i, serial[i].Path, parallel[i].Path)
		}
	}
	sd := Run(serial, All(), 1)
	pd := Run(parallel, All(), 8)
	if len(sd) != len(pd) {
		t.Fatalf("diagnostic counts differ: %d serial, %d parallel", len(sd), len(pd))
	}
	for i := range sd {
		if sd[i].String() != pd[i].String() {
			t.Errorf("diagnostic %d differs:\n  serial:   %s\n  parallel: %s", i, sd[i], pd[i])
		}
	}
}
