package analysis

import (
	"go/ast"
	"go/types"
)

// SendLock guards against the deadlock shape the gateway's shardMsg path
// is one missing escape case away from: a blocking channel send (or a
// WaitGroup/Cond Wait) executed while a mutex is held. Under
// backpressure the send blocks; every other goroutine that needs the
// mutex then blocks behind it — including, in the worst shape, the very
// consumer that would have drained the channel. The repository's
// sanctioned pattern is visible in Gateway.Ingest: sends under stageMu
// are select sends with a ctx.Done() receive alternative, so
// cancellation always unblocks the lock.
//
// Within a held region — the statements between x.Lock()/x.RLock() and
// its straight-line x.Unlock(), or to the end of the statement list when
// the unlock is deferred — three shapes are findings:
//
//   - a bare channel send (`ch <- v`) outside any select,
//   - a select whose cases are all sends with no default: every case
//     can block on a slow consumer, so the select provides no escape,
//   - sync.WaitGroup.Wait or sync.Cond.Wait.
//
// A select send with a receive alternative or a default is exempt, as is
// anything inside a deferred or spawned function (a `go` body does not
// hold the caller's lock; a deferred body mostly runs after the paired
// deferred unlock and its rare LIFO inversions are beyond a lexical
// checker's reach).
var SendLock = &Analyzer{
	Name: "sendlock",
	Doc: "no blocking channel send or WaitGroup/Cond Wait while holding a " +
		"mutex; select sends under a lock need a receive or default escape",
	Run: runSendLock,
}

func runSendLock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFuncSends(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFuncSends(pass, fn.Body)
			}
			return true
		})
	}
}

// checkFuncSends scans every statement list of one function body for
// lock acquisitions and audits each held region.
func checkFuncSends(pass *Pass, body *ast.BlockStmt) {
	forEachStmtList(body, func(list []ast.Stmt) {
		for i, st := range list {
			recv, kind, ok := lockStmt(pass, st)
			if !ok {
				continue
			}
			checkHeldRegion(pass, list[i+1:], recv, kind)
		}
	})
}

// checkHeldRegion walks the statements after a lock until the matching
// straight-line release, reporting blocking operations. A deferred
// unlock extends the region to the end of the list (the lock is held for
// the rest of the function's straight line from here).
func checkHeldRegion(pass *Pass, rest []ast.Stmt, recv, kind string) {
	want := unlockName(kind)
	for _, st := range rest {
		if es, ok := st.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok && matchesRelease(pass, call, recv, want) {
				return // straight-line release: region ends
			}
		}
		reportBlockingOps(pass, st, recv)
	}
}

// reportBlockingOps inspects one statement of a held region, skipping
// deferred and spawned bodies.
func reportBlockingOps(pass *Pass, st ast.Stmt, recv string) {
	ast.Inspect(st, func(n ast.Node) bool {
		switch m := n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			if !selectHasEscape(m) {
				pass.Reportf(m.Pos(),
					"select with only send cases and no default while holding %s; a slow consumer deadlocks every %s.Lock() caller — add a cancellation case or move the send after the unlock",
					recv, recv)
			}
			// Clause bodies may lock/send on their own; keep walking them,
			// but the comm statements themselves were judged above.
			for _, c := range m.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						reportBlockingOps(pass, s, recv)
					}
				}
			}
			return false
		case *ast.SendStmt:
			pass.Reportf(m.Pos(),
				"blocking channel send on %s while holding %s; under backpressure this strands every %s.Lock() caller — use a select with an escape case or send after the unlock",
				types.ExprString(m.Chan), recv, recv)
		case *ast.CallExpr:
			if isWaitGroupCall(pass, m, "Wait") || isCondWait(pass, m) {
				pass.Reportf(m.Pos(),
					"%s while holding %s blocks the lock until other goroutines finish; they may need the same lock",
					types.ExprString(m.Fun), recv)
			}
		}
		return true
	})
}

// selectHasEscape reports whether a select can proceed without a send
// completing: a default clause or any receive case.
func selectHasEscape(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default clause
		}
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if isReceiveExpr(comm.X) {
				return true
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 && isReceiveExpr(comm.Rhs[0]) {
				return true
			}
		}
	}
	return false
}

// isCondWait reports whether the call is sync.Cond.Wait — legitimate
// only in the Cond's own lock idiom, which this repository does not use;
// a deliberate use carries a pragma.
func isCondWait(pass *Pass, call *ast.CallExpr) bool {
	sel, method, ok := syncMethod(pass, call)
	if !ok || method != "Wait" {
		return false
	}
	if selInfo, ok := pass.Info.Selections[sel]; ok {
		return namedTypeKey(selInfo.Recv()) == "sync.Cond"
	}
	return false
}
