package analysis

// The golden harness: each analyzer's behavior — findings, exemptions,
// and pragma interaction — is pinned by files under testdata/<name>/.
// Expectations are `want "regex"` comments: every diagnostic must land
// on a line holding a matching expectation, and every expectation must
// be consumed by a diagnostic. Patterns match against
// "<analyzer>: <message>", so a single line can distinguish an analyzer
// finding from a pragma-grammar finding. `lppm-lint -list` separately
// enforces that every analyzer in All() has such a directory.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// runGolden type-checks the files under dir as one package with import
// path asPath (so path-scoped analyzers like detrand can be pointed at a
// deterministic package), runs the analyzer through the same
// runPackage/pragma pipeline lppm-lint uses, and diffs the surviving
// diagnostics against the want expectations.
func runGolden(t *testing.T, a *Analyzer, dir, asPath string) {
	t.Helper()
	pkg, err := loadGolden(dir, asPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags := runPackage(pkg, []*Analyzer{a})
	sortDiagnostics(diags)
	wants := collectWants(t, pkg)
	for _, d := range diags {
		if !claimWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	reportUnmatched(t, wants)
}

// runGoldenExpectNone asserts the analyzer stays silent over the
// directory when loaded under asPath, ignoring want comments — the
// negative half of path-scoped analyzers.
func runGoldenExpectNone(t *testing.T, a *Analyzer, dir, asPath string) {
	t.Helper()
	pkg, err := loadGolden(dir, asPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Path:     pkg.Path,
		Files:    pkg.Files,
		Pkg:      pkg.Pkg,
		Info:     pkg.Info,
		report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	a.Run(pass)
	for _, d := range diags {
		t.Errorf("unexpected diagnostic under %s: %s", asPath, d)
	}
}

// loadGolden parses and type-checks one testdata directory. Golden files
// import only the standard library, so the shared source importer
// resolves everything.
func loadGolden(dir, asPath string) (*Package, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := newInfo()
	conf := types.Config{Importer: stdImporter()}
	tpkg, err := conf.Check(asPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", dir, err)
	}
	return &Package{Path: asPath, Dir: dir, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// wantExp is one expectation: a pattern anchored to a file line.
type wantExp struct {
	pos     token.Position
	re      *regexp.Regexp
	pattern string
	matched bool
}

type lineKey struct {
	file string
	line int
}

// collectWants parses `want "p1" "p2" ...` directives out of every
// comment. Patterns may not contain a double quote; they match against
// "<analyzer>: <message>", and a pragma comment may itself carry a want
// (the directive is scanned from the raw comment text).
func collectWants(t *testing.T, pkg *Package) map[lineKey][]*wantExp {
	t.Helper()
	wants := make(map[lineKey][]*wantExp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, `want "`)
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := c.Text[idx+len("want "):]
				for {
					rest = strings.TrimLeft(rest, " \t")
					if !strings.HasPrefix(rest, `"`) {
						break
					}
					end := strings.Index(rest[1:], `"`)
					if end < 0 {
						t.Fatalf("%s: unterminated want pattern in %q", pos, c.Text)
					}
					pat := rest[1 : 1+end]
					rest = rest[end+2:]
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					key := lineKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], &wantExp{pos: pos, re: re, pattern: pat})
				}
			}
		}
	}
	return wants
}

// claimWant consumes the first unmatched expectation on the diagnostic's
// line whose pattern matches it.
func claimWant(wants map[lineKey][]*wantExp, d Diagnostic) bool {
	for _, w := range wants[lineKey{d.Pos.Filename, d.Pos.Line}] {
		if !w.matched && w.re.MatchString(d.Analyzer+": "+d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// reportUnmatched fails the test for every expectation no diagnostic
// consumed, in deterministic position order.
func reportUnmatched(t *testing.T, wants map[lineKey][]*wantExp) {
	t.Helper()
	var missed []*wantExp
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				missed = append(missed, w)
			}
		}
	}
	sort.Slice(missed, func(i, j int) bool {
		a, b := missed[i].pos, missed[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, w := range missed {
		t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.pattern)
	}
}
