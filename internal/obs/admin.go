package obs

import (
	"net/http"
	"net/http/pprof"
)

// AdminMux builds the admin-plane handler: /metrics (Prometheus text),
// /metrics.json, and the net/http/pprof endpoints. It is a private mux —
// the pprof handlers are attached explicitly rather than through the
// package's DefaultServeMux side effects, so importing obs never leaks
// profiling endpoints onto a serving listener. The caller binds this to
// its own admin listener, deliberately separate from the data plane: the
// serving listener's admission control (stream caps, token buckets) must
// never gate diagnostics, least of all while the process is overloaded,
// which is exactly when you need them.
func AdminMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.Handle("/metrics.json", MetricsJSONHandler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
