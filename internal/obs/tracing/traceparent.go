package tracing

import (
	"context"
	"encoding/hex"
	"fmt"
	"log/slog"
)

// Header is the W3C Trace Context propagation header name.
const Header = "traceparent"

// Traceparent serializes the context as a W3C traceparent header:
// version 00, 32 hex trace-id digits, 16 hex span-id digits, 2 hex
// flag digits, dash-separated.
func (sc SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", sc.Trace, sc.Span, sc.Flags)
}

// Parse decodes a W3C traceparent header. It accepts any version
// except the reserved ff (per spec, future versions must stay
// front-compatible with the 00 layout), requires non-zero IDs, and
// rejects anything malformed. Callers that just want "use it if
// valid" should use Extract, which never returns an error.
func Parse(header string) (SpanContext, error) {
	var sc SpanContext
	// 00-<32 hex>-<16 hex>-<2 hex> = 55 bytes. Later versions may
	// append fields after the flags; tolerate a longer header iff the
	// version is not 00 and byte 55 is a dash.
	if len(header) < 55 {
		return sc, fmt.Errorf("tracing: traceparent too short (%d bytes)", len(header))
	}
	if header[2] != '-' || header[35] != '-' || header[52] != '-' {
		return sc, fmt.Errorf("tracing: traceparent separators malformed")
	}
	if !isHex(header[0]) || !isHex(header[1]) {
		return sc, fmt.Errorf("tracing: traceparent version not hex")
	}
	version := hexByte(header[0])<<4 | hexByte(header[1])
	if version == 0xff {
		return sc, fmt.Errorf("tracing: traceparent version ff is reserved")
	}
	if len(header) > 55 {
		if version == 0 {
			return sc, fmt.Errorf("tracing: version 00 traceparent has trailing bytes")
		}
		if header[55] != '-' {
			return sc, fmt.Errorf("tracing: traceparent trailing bytes malformed")
		}
	}
	if _, err := hex.Decode(sc.Trace[:], []byte(header[3:35])); err != nil {
		return SpanContext{}, fmt.Errorf("tracing: traceparent trace-id: %w", err)
	}
	if _, err := hex.Decode(sc.Span[:], []byte(header[36:52])); err != nil {
		return SpanContext{}, fmt.Errorf("tracing: traceparent span-id: %w", err)
	}
	flags, err := hex.DecodeString(header[53:55])
	if err != nil {
		return SpanContext{}, fmt.Errorf("tracing: traceparent flags: %w", err)
	}
	sc.Flags = flags[0]
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("tracing: traceparent has zero trace or span id")
	}
	return sc, nil
}

// Extract decodes a traceparent header, returning the zero (invalid)
// context for anything malformed or absent — the server side of
// propagation: an invalid header simply means "start a fresh root
// trace", never an error and never a panic.
func Extract(header string) SpanContext {
	sc, err := Parse(header)
	if err != nil {
		return SpanContext{}
	}
	return sc
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f'
}

func hexByte(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	}
	return 0
}

// spanKey carries an in-flight *Span; remoteKey carries a bare
// SpanContext (a client that has IDs but no recording tracer).
type spanKey struct{}
type remoteKey struct{}

// ContextWithSpan returns ctx carrying sp (for the server side:
// handlers fetch it to parent child work and loggers fetch it to
// correlate records).
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// ContextWithSpanContext returns ctx carrying a bare propagation
// context (for the client side: no tracer, just identity to inject).
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, remoteKey{}, sc)
}

// FromContext returns the propagation context carried by ctx — an
// in-flight span's context if present, else a bare SpanContext, else
// the zero context. This is what the HTTP client injects.
func FromContext(ctx context.Context) SpanContext {
	if sp := SpanFromContext(ctx); sp != nil {
		return sp.Context()
	}
	sc, _ := ctx.Value(remoteKey{}).(SpanContext)
	return sc
}

// ContextAttrs extracts correlation attributes (trace_id, span_id)
// from ctx for structured logging — the obs.LoggerOptions.ContextAttrs
// hook. Returns nil when ctx carries no trace.
func ContextAttrs(ctx context.Context) []slog.Attr {
	sc := FromContext(ctx)
	if !sc.Valid() {
		return nil
	}
	return []slog.Attr{
		slog.String("trace_id", sc.Trace.String()),
		slog.String("span_id", sc.Span.String()),
	}
}
