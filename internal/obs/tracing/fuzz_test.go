package tracing

import "testing"

// FuzzParseTraceparent drives Parse with arbitrary headers. The
// invariants: no panic; an error always yields a zero context and a
// zero Extract; a success always yields a valid context whose
// canonical re-serialization parses back to the identical value (so a
// future-version header normalizes losslessly onto the 00 layout).
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	f.Add("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra.fields")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-no-trailing-allowed")
	f.Add("")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, header string) {
		sc, err := Parse(header)
		if err != nil {
			if sc != (SpanContext{}) {
				t.Fatalf("Parse(%q) errored with non-zero context %+v", header, sc)
			}
			if got := Extract(header); got != (SpanContext{}) {
				t.Fatalf("Extract(%q) = %+v after Parse error", header, got)
			}
			return
		}
		if !sc.Valid() {
			t.Fatalf("Parse(%q) accepted invalid context %+v", header, sc)
		}
		rt, err := Parse(sc.Traceparent())
		if err != nil {
			t.Fatalf("canonical %q of %q does not re-parse: %v", sc.Traceparent(), header, err)
		}
		if rt != sc {
			t.Fatalf("round-trip of %q: %+v != %+v", header, rt, sc)
		}
	})
}
