package tracing

import (
	"encoding/json"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// spanJSON is the wire form of a completed span on GET /trace.
type spanJSON struct {
	Trace   string `json:"trace"`
	Span    string `json:"span"`
	Parent  string `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Err     string `json:"err,omitempty"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

func toSpanJSON(d *SpanData) spanJSON {
	j := spanJSON{
		Trace:   d.Trace.String(),
		Span:    d.Span.String(),
		Name:    d.Name,
		StartNS: d.StartNS,
		DurNS:   d.EndNS - d.StartNS,
		Err:     d.Err,
		Attrs:   d.Attrs,
	}
	if !d.Parent.IsZero() {
		j.Parent = d.Parent.String()
	}
	return j
}

// traceDump is the GET /trace envelope. Epoch is the wall-clock origin
// of the start_ns timebase, so samples can be aligned with logs.
type traceDump struct {
	Epoch string     `json:"epoch"`
	Spans []spanJSON `json:"spans"`
}

// TraceHandler serves the span ring as JSON (GET /trace), oldest span
// first.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		all := t.Spans()
		dump := traceDump{
			Epoch: obs.Epoch().Format(time.RFC3339Nano),
			Spans: make([]spanJSON, 0, len(all)),
		}
		for _, d := range all {
			dump.Spans = append(dump.Spans, toSpanJSON(d))
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(dump) //lppm:allow droppederr -- admin-plane response write; the peer hanging up is not actionable
	})
}

// chromeEvent is one Chrome trace_event record: a complete ("X") slice
// with microsecond timestamps. The format is what about:tracing and
// Perfetto load natively, with zero dependencies on our side.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // micros since obs epoch
	Dur  float64           `json:"dur"` // micros
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeDump struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the span ring in Chrome trace_event format. Each
// trace gets its own tid (first-seen order over the seq-sorted ring),
// so Perfetto draws one lane per trace with parent/child slices
// nesting by time. Deterministic for a given ring state: spans are
// seq-ordered and tids are assigned in that order.
func (t *Tracer) WriteChrome(w io.Writer) error {
	all := t.Spans()
	tids := make(map[TraceID]int, len(all))
	dump := chromeDump{
		TraceEvents:     make([]chromeEvent, 0, len(all)),
		DisplayTimeUnit: "ms",
	}
	for _, d := range all {
		tid, ok := tids[d.Trace]
		if !ok {
			tid = len(tids) + 1
			tids[d.Trace] = tid
		}
		args := make(map[string]string, len(d.Attrs)+2)
		args["trace"] = d.Trace.String()
		if d.Err != "" {
			args["err"] = d.Err
		}
		for _, a := range d.Attrs {
			args[a.Key] = a.Val
		}
		dump.TraceEvents = append(dump.TraceEvents, chromeEvent{
			Name: d.Name,
			Cat:  "lppm",
			Ph:   "X",
			TS:   float64(d.StartNS) / 1e3,
			Dur:  float64(d.EndNS-d.StartNS) / 1e3,
			PID:  1,
			TID:  tid,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(dump)
}

// ChromeHandler serves the span ring in Chrome trace_event format
// (GET /trace.chrome) — save the body and load it in Perfetto or
// about:tracing.
func ChromeHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.chrome"`)
		_ = t.WriteChrome(w) //lppm:allow droppederr -- admin-plane response write; the peer hanging up is not actionable
	})
}
