package tracing

import (
	"sort"
	"sync/atomic"
)

// spanRing is a bounded lock-free MPMC ring of completed spans. Writers
// claim a slot with one atomic add and publish with one atomic pointer
// store — no locks, no allocation beyond the span itself — so ending a
// span is safe on the hot path. Readers snapshot by loading every slot;
// a concurrent writer can at worst replace a slot mid-snapshot, which
// only makes the snapshot *newer*, never torn (slots hold pointers to
// immutable-after-publish SpanData).
type spanRing struct {
	slots  []atomic.Pointer[SpanData]
	cursor atomic.Uint64
	mask   uint64
}

func newSpanRing(size int) *spanRing {
	n := 1
	for n < size {
		n <<= 1
	}
	return &spanRing{slots: make([]atomic.Pointer[SpanData], n), mask: uint64(n - 1)}
}

// put publishes a completed span, stamping its ring sequence number.
// The oldest span in the slot (if any) is overwritten — the ring keeps
// the most recent len(slots) spans.
func (r *spanRing) put(d *SpanData) {
	seq := r.cursor.Add(1) - 1
	d.Seq = seq
	r.slots[seq&r.mask].Store(d)
}

// snapshot returns the ring contents sorted oldest-first by sequence
// number. The result is never nil.
func (r *spanRing) snapshot() []*SpanData {
	out := make([]*SpanData, 0, len(r.slots))
	for i := range r.slots {
		if d := r.slots[i].Load(); d != nil {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// tail returns the newest n spans, oldest-first.
func (r *spanRing) tail(n int) []*SpanData {
	all := r.snapshot()
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}
