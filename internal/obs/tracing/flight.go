package tracing

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// flightSpanN bounds the spans copied into one flight snapshot — the
// "last N spans" of the incident, not the whole ring.
const flightSpanN = 128

// FlightRecorder keeps a rolling buffer of recent log events alongside
// the tracer's span ring, and freezes both into a snapshot when
// something goes wrong (stream error, swap rejection, recovery). The
// post-mortem then reads GET /debug/flight instead of hoping a scrape
// was running at the right moment.
//
// A nil *FlightRecorder no-ops on every method, so wiring code can
// call tracer.Flight().Snapshot(...) unconditionally. It implements
// obs.LogSink, so the slog handler tees every record into it.
type FlightRecorder struct {
	spans *spanRing

	logSlots []atomic.Pointer[obs.LogEvent]
	logSeq   atomic.Uint64
	logMask  uint64

	mu       sync.Mutex
	snaps    []*FlightSnapshot
	maxSnaps int
	snapSeq  uint64
}

func newFlightRecorder(spans *spanRing, logSize, maxSnaps int) *FlightRecorder {
	if logSize <= 0 {
		logSize = 256
	}
	n := 1
	for n < logSize {
		n <<= 1
	}
	if maxSnaps <= 0 {
		maxSnaps = 8
	}
	return &FlightRecorder{
		spans:    spans,
		logSlots: make([]atomic.Pointer[obs.LogEvent], n),
		logMask:  uint64(n - 1),
		maxSnaps: maxSnaps,
	}
}

// LogEvent records one structured-log event into the rolling buffer
// (the obs.LogSink interface). Lock-free, same discipline as the span
// ring.
func (f *FlightRecorder) LogEvent(e obs.LogEvent) {
	if f == nil {
		return
	}
	seq := f.logSeq.Add(1) - 1
	e.Seq = seq
	f.logSlots[seq&f.logMask].Store(&e)
}

// FlightSnapshot is one frozen incident: the last spans and log events
// as of the trigger.
type FlightSnapshot struct {
	Seq    uint64         `json:"seq"`
	Reason string         `json:"reason"`
	WhenNS int64          `json:"when_ns"`
	Spans  []spanJSON     `json:"spans"`
	Logs   []obs.LogEvent `json:"logs"`
}

// Snapshot freezes the tail of the span ring and the log buffer under
// the given reason. Bounded: only the newest snapshots are retained
// (oldest dropped), and each holds at most flightSpanN spans.
func (f *FlightRecorder) Snapshot(reason string) {
	if f == nil {
		return
	}
	tail := f.spans.tail(flightSpanN)
	spans := make([]spanJSON, 0, len(tail))
	for _, d := range tail {
		spans = append(spans, toSpanJSON(d))
	}
	logs := make([]obs.LogEvent, 0, len(f.logSlots))
	for i := range f.logSlots {
		if e := f.logSlots[i].Load(); e != nil {
			logs = append(logs, *e)
		}
	}
	// Oldest-first by buffer sequence, mirroring the span ordering.
	for i := 1; i < len(logs); i++ {
		for j := i; j > 0 && logs[j-1].Seq > logs[j].Seq; j-- {
			logs[j-1], logs[j] = logs[j], logs[j-1]
		}
	}
	snap := &FlightSnapshot{
		Reason: reason,
		WhenNS: obs.Stamp(),
		Spans:  spans,
		Logs:   logs,
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	snap.Seq = f.snapSeq
	f.snapSeq++
	f.snaps = append(f.snaps, snap)
	if len(f.snaps) > f.maxSnaps {
		f.snaps = f.snaps[len(f.snaps)-f.maxSnaps:]
	}
}

// Snapshots returns the retained snapshots, oldest-first.
func (f *FlightRecorder) Snapshots() []*FlightSnapshot {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*FlightSnapshot, len(f.snaps))
	copy(out, f.snaps)
	return out
}

// flightDump is the GET /debug/flight envelope.
type flightDump struct {
	Epoch     string            `json:"epoch"`
	Snapshots []*FlightSnapshot `json:"snapshots"`
}

// FlightHandler serves the flight recorder's snapshots
// (GET /debug/flight).
func FlightHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dump := flightDump{
			Epoch:     obs.Epoch().Format(time.RFC3339Nano),
			Snapshots: t.Flight().Snapshots(),
		}
		if dump.Snapshots == nil {
			dump.Snapshots = []*FlightSnapshot{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(dump) //lppm:allow droppederr -- admin-plane response write; the peer hanging up is not actionable
	})
}
