// Package tracing is a stdlib-only span tracer for the serving plane.
//
// Spans are identified the W3C Trace Context way — a 128-bit trace ID
// shared by every span in one request tree and a 64-bit span ID per
// span — so a trace started by a remote client survives across the
// HTTP boundary via the `traceparent` header (see traceparent.go) and
// keeps working unchanged when the multi-node tier lands.
//
// The design constraints mirror internal/obs:
//
//   - Zero cost when disabled: a nil *Tracer (and the nil *Span every
//     constructor returns through it) makes every method a no-op, so
//     call sites need no guards.
//   - No new hot-path clock reads: span start/end times are the
//     monotonic obs.Stamp() values the stage clock already samples;
//     callers pass them in via the ...At constructors. Only explicitly
//     opted-in work (a client-traced window, control-plane spans) pays
//     its own reads.
//   - Deterministic sampling: the head-sampling decision is pure
//     arithmetic on the trace ID (no math/rand), so a given trace is
//     either fully recorded or fully absent and the record output is
//     bit-identical either way.
//
// Completed spans land in a bounded lock-free ring (ring.go) exported
// on the admin plane as JSON and Chrome trace_event (export.go); the
// same ring backs the flight recorder (flight.go).
package tracing

import (
	"encoding/binary"
	"encoding/hex"
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// TraceID is a 128-bit trace identifier shared by all spans of a trace.
type TraceID [16]byte

// SpanID is a 64-bit span identifier, unique within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// FlagSampled is the W3C trace-flags bit meaning "record this trace".
const FlagSampled byte = 0x01

// SpanContext is the propagated identity of a span: enough to parent a
// child span or serialize a traceparent header, nothing more.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
	Flags byte
}

// Valid reports whether both IDs are non-zero (the W3C validity rule).
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Sampled reports whether the trace is being recorded. Child spans of
// an unsampled context are not recorded.
func (sc SpanContext) Sampled() bool { return sc.Valid() && sc.Flags&FlagSampled != 0 }

// idCounter feeds the splitmix64 ID generator. It is seeded once from
// the wall clock so IDs differ across processes; within a process the
// atomic increment guarantees uniqueness. The generator is shared by
// every Tracer and by NewRootContext.
var idCounter atomic.Uint64

func init() {
	idCounter.Store(uint64(time.Now().UnixNano()))
}

// splitmix64 is the finalizer of the splitmix64 PRNG: a bijective
// mixer, so distinct counter values can never collide.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func newTraceID() TraceID {
	base := idCounter.Add(2)
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], splitmix64(base-1))
	binary.BigEndian.PutUint64(id[8:], splitmix64(base))
	if id.IsZero() { // astronomically unlikely; keep Valid() honest
		id[15] = 1
	}
	return id
}

func newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], splitmix64(idCounter.Add(1)))
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

// NewRootContext mints a fresh sampled root context without a Tracer —
// the client half of propagation: callers (cmd/lppm-load, tests, any
// remote client) put it in a context.Context and the HTTP client
// serializes it into a traceparent header.
func NewRootContext() SpanContext {
	return SpanContext{Trace: newTraceID(), Span: newSpanID(), Flags: FlagSampled}
}

// Config configures a Tracer. The zero value is usable.
type Config struct {
	// RingSize is the completed-span ring capacity, rounded up to a
	// power of two; 0 means 4096.
	RingSize int
	// SampleFrac is the head-sampling fraction for Root spans, clamped
	// to [0,1]; 0 means 1 (record everything). The decision is
	// deterministic in the trace ID: a trace is sampled iff the low 64
	// bits of its ID, read as a uint64, fall below frac·2⁶⁴.
	SampleFrac float64
	// FlightLog is the log-event ring capacity behind the flight
	// recorder; 0 means 256.
	FlightLog int
	// FlightSnapshots bounds retained flight snapshots; 0 means 8.
	FlightSnapshots int
}

// Tracer records spans into a bounded ring. A nil *Tracer is a valid
// disabled tracer: every method no-ops and every constructor returns a
// nil *Span whose methods also no-op.
type Tracer struct {
	ring      *spanRing
	flight    *FlightRecorder
	sampleAll bool
	threshold uint64 // sample iff lo64(trace) < threshold
}

// New builds a Tracer. See Config for defaults.
func New(cfg Config) *Tracer {
	size := cfg.RingSize
	if size <= 0 {
		size = 4096
	}
	frac := cfg.SampleFrac
	if frac == 0 {
		frac = 1
	}
	t := &Tracer{ring: newSpanRing(size)}
	switch {
	case frac >= 1:
		t.sampleAll = true
	case frac <= 0:
		t.threshold = 0
	default:
		t.threshold = uint64(math.Round(frac * float64(1<<63) * 2))
	}
	t.flight = newFlightRecorder(t.ring, cfg.FlightLog, cfg.FlightSnapshots)
	return t
}

// Flight returns the tracer's flight recorder; nil on a nil tracer, so
// g.tracer.Flight().Snapshot(...) is safe everywhere.
func (t *Tracer) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.flight
}

// sampled is the deterministic head-sampling decision: pure arithmetic
// on the trace ID, so it is reproducible and detrand-clean.
func (t *Tracer) sampled(id TraceID) bool {
	if t.sampleAll {
		return true
	}
	return binary.BigEndian.Uint64(id[8:]) < t.threshold
}

// Attr is one span attribute. Attributes are an ordered list, not a
// map, so exports are deterministic without sorting.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// SpanData is a completed span as stored in the ring and exported.
type SpanData struct {
	Trace   TraceID
	Span    SpanID
	Parent  SpanID // zero for a root span
	Name    string
	StartNS int64 // obs.Stamp() timebase (monotonic ns since process start)
	EndNS   int64
	Err     string
	Attrs   []Attr
	Seq     uint64 // ring insertion order, assigned at End
}

// Span is an in-flight span. A nil *Span (the disabled case) accepts
// every method as a no-op, so call sites never need guards.
type Span struct {
	t *Tracer
	d SpanData
}

// RootAt starts a new head-sampled trace whose root span began at
// startNS (an obs.Stamp() value). Returns nil — record nothing — when
// the tracer is nil or the freshly minted trace ID falls outside the
// sample fraction.
func (t *Tracer) RootAt(name string, startNS int64) *Span {
	if t == nil {
		return nil
	}
	id := newTraceID()
	if !t.sampled(id) {
		return nil
	}
	return &Span{t: t, d: SpanData{
		Trace:   id,
		Span:    newSpanID(),
		Name:    name,
		StartNS: startNS,
	}}
}

// ForceRootAt starts a new trace that bypasses head sampling — for
// call sites that are already sampled upstream (the stage clock's
// 1-in-8 tick mask) or are rare control-plane events worth keeping.
func (t *Tracer) ForceRootAt(name string, startNS int64) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, d: SpanData{
		Trace:   newTraceID(),
		Span:    newSpanID(),
		Name:    name,
		StartNS: startNS,
	}}
}

// ChildAt starts a child of parent beginning at startNS. Returns nil
// when the tracer is nil or the parent is unsampled — so an unsampled
// trace costs nothing below its root.
func (t *Tracer) ChildAt(parent SpanContext, name string, startNS int64) *Span {
	if t == nil || !parent.Sampled() {
		return nil
	}
	return &Span{t: t, d: SpanData{
		Trace:   parent.Trace,
		Span:    newSpanID(),
		Parent:  parent.Span,
		Name:    name,
		StartNS: startNS,
	}}
}

// Root is RootAt with the current obs.Stamp() — for control-plane
// spans that may pay their own clock read.
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return t.RootAt(name, obs.Stamp())
}

// ForceRoot is ForceRootAt with the current obs.Stamp().
func (t *Tracer) ForceRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return t.ForceRootAt(name, obs.Stamp())
}

// Child is ChildAt with the current obs.Stamp().
func (t *Tracer) Child(parent SpanContext, name string) *Span {
	if t == nil || !parent.Sampled() {
		return nil
	}
	return t.ChildAt(parent, name, obs.Stamp())
}

// Context returns the span's propagation context (zero on nil).
// Recorded spans always carry the sampled flag: a span only exists
// because its trace passed head sampling.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.d.Trace, Span: s.d.Span, Flags: FlagSampled}
}

// Attr appends a string attribute and returns s for chaining.
func (s *Span) Attr(key, val string) *Span {
	if s == nil {
		return nil
	}
	s.d.Attrs = append(s.d.Attrs, Attr{Key: key, Val: val})
	return s
}

// AttrInt appends an integer attribute.
func (s *Span) AttrInt(key string, val int64) *Span {
	if s == nil {
		return nil
	}
	return s.Attr(key, strconv.FormatInt(val, 10))
}

// AttrUint appends an unsigned integer attribute.
func (s *Span) AttrUint(key string, val uint64) *Span {
	if s == nil {
		return nil
	}
	return s.Attr(key, strconv.FormatUint(val, 10))
}

// AttrFloat appends a float attribute in shortest round-trip form.
func (s *Span) AttrFloat(key string, val float64) *Span {
	if s == nil {
		return nil
	}
	return s.Attr(key, strconv.FormatFloat(val, 'g', -1, 64))
}

// EndAt completes the span at endNS (an obs.Stamp() value) and
// publishes it to the ring. A span must be ended exactly once;
// further method calls on it are undefined.
func (s *Span) EndAt(endNS int64) {
	if s == nil {
		return
	}
	s.d.EndNS = endNS
	s.t.ring.put(&s.d)
}

// End completes the span at the current obs.Stamp().
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(obs.Stamp())
}

// EndErrAt completes the span at endNS, recording err (nil err is the
// same as EndAt).
func (s *Span) EndErrAt(endNS int64, err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.d.Err = err.Error()
	}
	s.EndAt(endNS)
}

// EndErr completes the span at the current obs.Stamp(), recording err.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	s.EndErrAt(obs.Stamp(), err)
}

// Spans returns the ring contents oldest-first (nil tracer → nil).
func (t *Tracer) Spans() []*SpanData {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}
