package tracing

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// mustParse fails the test on a Parse error.
func mustParse(t *testing.T, header string) SpanContext {
	t.Helper()
	sc, err := Parse(header)
	if err != nil {
		t.Fatalf("Parse(%q): %v", header, err)
	}
	return sc
}

// TestTraceparentGoldenRoundTrip pins the exact wire form: a known
// context serializes to the W3C example header and parses back equal.
func TestTraceparentGoldenRoundTrip(t *testing.T) {
	sc := SpanContext{Flags: FlagSampled}
	mustDecodeHex(t, sc.Trace[:], "4bf92f3577b34da6a3ce929d0e0e4736")
	mustDecodeHex(t, sc.Span[:], "00f067aa0ba902b7")
	const want = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if got := sc.Traceparent(); got != want {
		t.Fatalf("Traceparent() = %q, want %q", got, want)
	}
	if got := mustParse(t, want); got != sc {
		t.Fatalf("Parse round-trip = %+v, want %+v", got, sc)
	}
	// An unsampled header round-trips the flag too.
	unsampled := sc
	unsampled.Flags = 0
	got := mustParse(t, unsampled.Traceparent())
	if got != unsampled || got.Sampled() {
		t.Fatalf("unsampled round-trip = %+v (sampled=%v)", got, got.Sampled())
	}
}

func mustDecodeHex(t *testing.T, dst []byte, s string) {
	t.Helper()
	if len(s) != 2*len(dst) {
		t.Fatalf("hex %q does not fill %d bytes", s, len(dst))
	}
	for i := 0; i < len(s); i += 2 {
		dst[i/2] = hexByte(s[i])<<4 | hexByte(s[i+1])
	}
}

// TestParseMalformed is the reject table: every W3C-invalid shape must
// error from Parse and come back zero from Extract.
func TestParseMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := map[string]string{
		"empty":            "",
		"short":            valid[:54],
		"bad sep 1":        valid[:2] + "_" + valid[3:],
		"bad sep 2":        valid[:35] + "_" + valid[36:],
		"bad sep 3":        valid[:52] + "_" + valid[53:],
		"version not hex":  "zz" + valid[2:],
		"version ff":       "ff" + valid[2:],
		"v00 trailing":     valid + "-extra",
		"trailing no dash": "01" + valid[2:] + "x",
		"trace id not hex": "00-zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"span id not hex":  "00-4bf92f3577b34da6a3ce929d0e0e4736-zzf067aa0ba902b7-01",
		"flags not hex":    valid[:53] + "zz",
		"zero trace id":    "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span id":     "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"all zero":         "00-00000000000000000000000000000000-0000000000000000-00",
	}
	for name, header := range cases {
		if sc, err := Parse(header); err == nil {
			t.Errorf("%s: Parse(%q) accepted as %+v", name, header, sc)
		}
		if sc := Extract(header); sc != (SpanContext{}) {
			t.Errorf("%s: Extract(%q) = %+v, want zero", name, header, sc)
		}
	}
	// Forward compatibility: a future version may append fields after a
	// dash at byte 55 — parseable, IDs preserved.
	future := "01" + valid[2:] + "-futurefield"
	sc := mustParse(t, future)
	if sc != mustParse(t, valid) {
		t.Fatalf("future-version parse = %+v, want same IDs as v00", sc)
	}
}

// TestHeadSamplingDeterministic checks the sampling decision is pure
// arithmetic on the trace ID — same ID, same verdict, and the verdict
// is exactly lo64(id) < frac·2⁶⁴.
func TestHeadSamplingDeterministic(t *testing.T) {
	half := New(Config{SampleFrac: 0.5})
	mkID := func(lo uint64) TraceID {
		var id TraceID
		id[0] = 1 // non-zero high half
		binary.BigEndian.PutUint64(id[8:], lo)
		return id
	}
	cases := []struct {
		lo   uint64
		want bool
	}{
		{0, true},
		{1 << 62, true},
		{1<<63 - 1, true},
		{1 << 63, false},
		{^uint64(0), false},
	}
	for _, c := range cases {
		for i := 0; i < 3; i++ { // repeatable, not probabilistic
			if got := half.sampled(mkID(c.lo)); got != c.want {
				t.Fatalf("sampled(lo=%#x) = %v, want %v", c.lo, got, c.want)
			}
		}
	}
	// frac=1 (and the 0 default) samples everything.
	if all := New(Config{}); !all.sampled(mkID(^uint64(0))) {
		t.Fatal("default tracer rejected a trace")
	}
	// A child of an unsampled parent records nothing; a sampled parent's
	// child records.
	if sp := half.ChildAt(SpanContext{}, "x", 1); sp != nil {
		t.Fatal("child of invalid parent is non-nil")
	}
	parent := SpanContext{Trace: mkID(3), Span: SpanID{1}, Flags: FlagSampled}
	if sp := half.ChildAt(parent, "x", 1); sp == nil {
		t.Fatal("child of sampled parent is nil")
	}
}

// TestRingWrap checks the span ring keeps exactly the newest spans in
// seq order once it wraps.
func TestRingWrap(t *testing.T) {
	tr := New(Config{RingSize: 8})
	for i := 0; i < 20; i++ {
		tr.ForceRootAt("s", int64(i)).AttrInt("i", int64(i)).EndAt(int64(i) + 1)
	}
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("ring holds %d spans, want 8", len(spans))
	}
	for i, sp := range spans {
		if want := int64(12 + i); sp.StartNS != want {
			t.Fatalf("span %d started at %d, want %d (newest 8, oldest first)", i, sp.StartNS, want)
		}
		if i > 0 && spans[i-1].Seq >= sp.Seq {
			t.Fatalf("seq not increasing at %d", i)
		}
	}
}

// TestNilSafety: every method on nil tracer/span/flight must no-op —
// the property that keeps call sites guard-free.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Spans() != nil || tr.Flight() != nil {
		t.Fatal("nil tracer returned non-nil state")
	}
	sp := tr.Root("x")
	sp = sp.Attr("k", "v").AttrInt("i", 1).AttrUint("u", 1).AttrFloat("f", 1)
	sp.End()
	sp.EndErr(errors.New("x"))
	sp.EndAt(1)
	sp.EndErrAt(1, nil)
	if sp.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
	tr.ForceRoot("x").End()
	tr.Child(SpanContext{}, "x").End()
	tr.Flight().Snapshot("x")
	tr.Flight().LogEvent(obs.LogEvent{})
	if tr.Flight().Snapshots() != nil {
		t.Fatal("nil flight recorder returned snapshots")
	}
}

// TestHandlers exercises the three admin endpoints over a small ring.
func TestHandlers(t *testing.T) {
	tr := New(Config{RingSize: 16})
	root := tr.ForceRootAt("batch", 100)
	tr.ChildAt(root.Context(), "window", 110).Attr("user", "u00").EndAt(150)
	root.EndErrAt(200, errors.New("boom"))
	tr.Flight().Snapshot("test incident")

	rec := httptest.NewRecorder()
	TraceHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	var dump struct {
		Epoch string `json:"epoch"`
		Spans []struct {
			Trace, Span, Parent, Name, Err string
			StartNS                        int64 `json:"start_ns"`
			DurNS                          int64 `json:"dur_ns"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("GET /trace: %v", err)
	}
	if dump.Epoch == "" || len(dump.Spans) != 2 {
		t.Fatalf("GET /trace: epoch=%q spans=%d", dump.Epoch, len(dump.Spans))
	}
	wnd, bat := dump.Spans[0], dump.Spans[1] // window ended first
	if wnd.Name != "window" || wnd.Parent != bat.Span || wnd.Trace != bat.Trace {
		t.Fatalf("span tree wrong: window=%+v batch=%+v", wnd, bat)
	}
	if wnd.DurNS != 40 || bat.Err != "boom" {
		t.Fatalf("span fields wrong: window=%+v batch=%+v", wnd, bat)
	}

	rec = httptest.NewRecorder()
	ChromeHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/trace.chrome", nil))
	var chrome struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil {
		t.Fatalf("GET /trace.chrome: %v", err)
	}
	if chrome.DisplayTimeUnit != "ms" || len(chrome.TraceEvents) != 2 {
		t.Fatalf("chrome dump: unit=%q events=%d", chrome.DisplayTimeUnit, len(chrome.TraceEvents))
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" || ev.Args["trace"] != bat.Trace {
			t.Fatalf("chrome event wrong: %+v", ev)
		}
	}
	if chrome.TraceEvents[1].Args["err"] != "boom" {
		t.Fatalf("chrome err arg missing: %+v", chrome.TraceEvents[1])
	}

	rec = httptest.NewRecorder()
	FlightHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if !strings.Contains(rec.Body.String(), `"test incident"`) {
		t.Fatalf("GET /debug/flight missing snapshot: %s", rec.Body.String())
	}
}

// TestFlightRecorder checks snapshot bounding and log-event ordering.
func TestFlightRecorder(t *testing.T) {
	tr := New(Config{RingSize: 8, FlightLog: 4, FlightSnapshots: 2})
	fl := tr.Flight()
	for i := 0; i < 6; i++ {
		fl.LogEvent(obs.LogEvent{Msg: string(rune('a' + i)), WhenNS: int64(i)})
	}
	tr.ForceRootAt("s", 1).EndAt(2)
	fl.Snapshot("first")
	fl.Snapshot("second")
	fl.Snapshot("third")
	snaps := fl.Snapshots()
	if len(snaps) != 2 || snaps[0].Reason != "second" || snaps[1].Reason != "third" {
		t.Fatalf("retained %d snapshots (%v), want newest 2", len(snaps), snaps)
	}
	s := snaps[1]
	if len(s.Spans) != 1 || s.Spans[0].Name != "s" {
		t.Fatalf("snapshot spans = %+v", s.Spans)
	}
	// Log ring held 4 slots: events c..f survive, oldest first.
	if len(s.Logs) != 4 {
		t.Fatalf("snapshot holds %d log events, want 4", len(s.Logs))
	}
	for i, e := range s.Logs {
		if want := string(rune('c' + i)); e.Msg != want {
			t.Fatalf("log %d = %q, want %q", i, e.Msg, want)
		}
		if i > 0 && s.Logs[i-1].Seq >= e.Seq {
			t.Fatalf("log seq not increasing at %d", i)
		}
	}
	if s.WhenNS == 0 {
		t.Fatal("snapshot not timestamped")
	}
}

// TestContextPlumbing checks the context carriers the server and client
// share: span > bare context > zero precedence, and the slog attrs.
func TestContextPlumbing(t *testing.T) {
	tr := New(Config{})
	sp := tr.ForceRoot("h")
	ctx := ContextWithSpan(t.Context(), sp)
	if got := FromContext(ctx); got != sp.Context() {
		t.Fatalf("FromContext(span ctx) = %+v, want %+v", got, sp.Context())
	}
	remote := NewRootContext()
	rctx := ContextWithSpanContext(t.Context(), remote)
	if got := FromContext(rctx); got != remote {
		t.Fatalf("FromContext(remote ctx) = %+v, want %+v", got, remote)
	}
	if got := FromContext(t.Context()); got.Valid() {
		t.Fatalf("FromContext(bare ctx) = %+v, want invalid", got)
	}
	attrs := ContextAttrs(rctx)
	if len(attrs) != 2 || attrs[0].Value.String() != remote.Trace.String() {
		t.Fatalf("ContextAttrs = %v", attrs)
	}
	if ContextAttrs(t.Context()) != nil {
		t.Fatal("ContextAttrs on bare context is non-nil")
	}
	sp.End()
}

// TestNewRootContext: fresh contexts are valid, sampled, and unique.
func TestNewRootContext(t *testing.T) {
	a, b := NewRootContext(), NewRootContext()
	if !a.Sampled() || !b.Sampled() {
		t.Fatalf("root contexts not sampled: %+v %+v", a, b)
	}
	if a.Trace == b.Trace || a.Span == b.Span {
		t.Fatalf("root contexts collide: %+v %+v", a, b)
	}
}
