package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a Gather result in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE pair per metric name, then a sample
// line per series, with histograms expanded to cumulative _bucket series
// plus _sum and _count. The whole page is rendered into a buffer first so a
// mid-write failure cannot leave a half-line on the wire.
func WritePrometheus(w io.Writer, samples []Sample) error {
	var b bytes.Buffer
	seen := make(map[string]bool, len(samples))
	for i := range samples {
		s := &samples[i]
		if !seen[s.Name] {
			seen[s.Name] = true
			if s.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.Name, strings.ReplaceAll(s.Help, "\n", " "))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Kind)
		}
		if s.Hist != nil {
			writePromHistogram(&b, s)
			continue
		}
		fmt.Fprintf(&b, "%s%s %s\n", s.Name, promLabels(s.Labels, "", ""), promFloat(s.Value))
	}
	if _, err := w.Write(b.Bytes()); err != nil {
		return err
	}
	return nil
}

func writePromHistogram(b *bytes.Buffer, s *Sample) {
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Hist.Counts[i]
		upper := "+Inf"
		if i < NumBuckets-1 {
			upper = strconv.FormatInt(BucketUpper(i), 10)
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", s.Name, promLabelsLe(s.Labels, upper), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %d\n", s.Name, promLabels(s.Labels, "", ""), s.Hist.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", s.Name, promLabels(s.Labels, "", ""), s.Hist.Count)
}

// promLabels renders a label set as {k="v",...} with keys sorted, or the
// empty string when there are none. extraK/extraV splice one more pair
// into the sorted order (the histogram "le" bound).
func promLabels(labels Labels, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	keys := make([]string, 0, len(labels)+1)
	for k := range labels {
		keys = append(keys, k)
	}
	if extraK != "" {
		keys = append(keys, extraK)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := labels[k]
		if k == extraK {
			v = extraV
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func promLabelsLe(labels Labels, upper string) string {
	return promLabels(labels, "le", upper)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// promFloat renders a value the way Prometheus expects: integral values
// without a fractional part, NaN/Inf spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	// Integral (fractional part exactly zero) and safely inside int64.
	if _, frac := math.Modf(v); frac == 0 && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonMetric is one series in the JSON exposition.
type jsonMetric struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Value  float64           `json:"value,omitempty"`
	Hist   *jsonHistogram    `json:"histogram,omitempty"`
}

type jsonHistogram struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	// Buckets holds the non-empty buckets as {upper-bound: count};
	// the overflow bucket's key is "+Inf".
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// WriteJSON renders a Gather result as a JSON array of series. JSON has no
// NaN or Inf, so non-finite gauge values are squashed to 0 (the stats
// surface applies the same rule, so the two JSON views agree).
func WriteJSON(w io.Writer, samples []Sample) error {
	out := make([]jsonMetric, 0, len(samples))
	for i := range samples {
		s := &samples[i]
		m := jsonMetric{Name: s.Name, Labels: s.Labels, Kind: s.Kind.String()}
		if s.Hist != nil {
			h := &jsonHistogram{
				Count: s.Hist.Count,
				Sum:   s.Hist.Sum,
				Mean:  jsonFinite(s.Hist.Mean()),
				P50:   s.Hist.Quantile(0.50),
				P90:   s.Hist.Quantile(0.90),
				P99:   s.Hist.Quantile(0.99),
			}
			for b := 0; b < NumBuckets; b++ {
				if c := s.Hist.Counts[b]; c > 0 {
					if h.Buckets == nil {
						h.Buckets = make(map[string]uint64)
					}
					key := "+Inf"
					if b < NumBuckets-1 {
						key = strconv.FormatInt(BucketUpper(b), 10)
					}
					h.Buckets[key] = c
				}
			}
			m.Hist = h
		} else {
			m.Value = jsonFinite(s.Value)
		}
		out = append(out, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// jsonFinite squashes NaN/Inf to 0 — JSON cannot carry them.
func jsonFinite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// MetricsHandler serves the registry in Prometheus text format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, r.Gather()); err != nil {
			return // client went away mid-response; nothing to do
		}
	})
}

// MetricsJSONHandler serves the registry as JSON.
func MetricsJSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := WriteJSON(w, r.Gather()); err != nil {
			return // client went away mid-response; nothing to do
		}
	})
}
