// Package obs is the serving stack's observability subsystem: a metric
// registry of atomic counters, gauges and lock-free fixed-bucket latency
// histograms, Prometheus text-format and JSON exposition, a stage clock
// that attributes end-to-end latency to the pipeline stage that spent it,
// and an admin-plane HTTP mux (/metrics, /metrics.json, net/http/pprof).
//
// The package is stdlib-only and built for always-on use on the hot path:
// every update is a handful of atomic operations with zero allocations,
// and anything that needs a lock (registration, snapshotting) happens off
// the serving path. Instrumentation must never perturb protected output —
// obs reads the wall clock but feeds nothing back into the deterministic
// layers, so it lives strictly in the serving packages (service, server,
// cmd) and is never imported by a deterministic one (§3, §12 of DESIGN.md).
//
// Components that already keep their own atomic counters (the gateway's
// per-shard stats) register them as CounterFunc/GaugeFunc callbacks read
// at snapshot time, so exposing a counter costs the hot path nothing and
// the registry cannot drift from the source of truth.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is an instrument's constant label set, fixed at registration.
// (There is deliberately no dynamic-label API: a label born from request
// data is an unbounded cardinality leak; pre-register the series you mean
// to have.)
type Labels map[string]string

// Kind discriminates what an instrument measures.
type Kind int

const (
	// KindCounter is a monotonically non-decreasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket latency/size distribution.
	KindHistogram
)

// String returns the Prometheus TYPE name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing atomic count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic value that can rise and fall.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// instrument is one registered series: identity plus exactly one backing
// source (an owned instrument or a read-at-snapshot callback).
type instrument struct {
	name   string
	help   string
	labels Labels
	key    string // name + canonical label encoding
	kind   Kind

	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	counterFunc func() uint64
	gaugeFunc   func() float64
}

// Registry holds the instruments of one serving stack (typically one per
// gateway — everything downstream registers into the gateway's). Safe for
// concurrent use. Registration is get-or-create on (name, labels): asking
// twice for the same series returns the same instrument, so independently
// constructed components can share counters without coordination. A
// *Func re-registration replaces the callback — the newest component owns
// the series. Registering the same series under a different kind panics:
// that is a programming error, caught at wiring time, not a runtime
// condition.
type Registry struct {
	nop bool

	mu    sync.Mutex
	order []*instrument
	byKey map[string]*instrument
}

// NewRegistry returns an empty, collecting registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*instrument)}
}

// Nop returns a registry that records nothing: instruments are handed out
// and usable, but never registered, and Gather returns nothing. Disabled
// reports true, which is the signal serving code uses to skip its clock
// reads. Nop exists for exactly one purpose — the interleaved on/off
// overhead benchmark needs an honest "off" — and for tests that want a
// gateway without metric bookkeeping.
func Nop() *Registry { return &Registry{nop: true} }

// Disabled reports whether this registry collects at all. Hot paths guard
// their wall-clock stamps with it; instrument updates need no guard (on a
// Nop registry they touch private atomics nobody reads).
func (r *Registry) Disabled() bool { return r.nop }

// labelKey canonicalizes a label set: keys sorted, k=v joined. Keys are
// collected and then visibly sorted, so the encoding is deterministic.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// cloneLabels copies a label set so later caller mutation cannot skew the
// registered identity.
func cloneLabels(labels Labels) Labels {
	if len(labels) == 0 {
		return nil
	}
	out := make(Labels, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// register is the get-or-create core. make builds the instrument when the
// series is new; replace, when non-nil, updates an existing func-backed
// series in place (callback re-registration).
func (r *Registry) register(name, help string, labels Labels, kind Kind,
	make func(*instrument), replace func(*instrument)) *instrument {
	key := name + "{" + labelKey(labels) + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if ins, ok := r.byKey[key]; ok {
		if ins.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s, was %s", key, kind, ins.kind))
		}
		if replace != nil {
			replace(ins)
		}
		return ins
	}
	ins := &instrument{name: name, help: help, labels: cloneLabels(labels), key: key, kind: kind}
	make(ins)
	if r.byKey != nil {
		r.byKey[key] = ins
		r.order = append(r.order, ins)
	}
	return ins
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	ins := r.register(name, help, labels, KindCounter,
		func(i *instrument) { i.counter = &Counter{} }, nil)
	return ins.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	ins := r.register(name, help, labels, KindGauge,
		func(i *instrument) { i.gauge = &Gauge{} }, nil)
	return ins.gauge
}

// Histogram returns the named latency histogram, creating it on first use.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	ins := r.register(name, help, labels, KindHistogram,
		func(i *instrument) { i.hist = &Histogram{} }, nil)
	return ins.hist
}

// CounterFunc registers a counter series whose value is read from fn at
// snapshot time — the zero-hot-path-cost way to expose a count a component
// already maintains. fn must be safe to call from any goroutine and should
// be monotone. Re-registering replaces the callback.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	r.register(name, help, labels, KindCounter,
		func(i *instrument) { i.counterFunc = fn },
		func(i *instrument) {
			if i.counterFunc != nil {
				i.counterFunc = fn
			}
		})
}

// GaugeFunc registers a gauge series read from fn at snapshot time (queue
// depths, table sizes, generation numbers). Same contract as CounterFunc.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, labels, KindGauge,
		func(i *instrument) { i.gaugeFunc = fn },
		func(i *instrument) {
			if i.gaugeFunc != nil {
				i.gaugeFunc = fn
			}
		})
}

// Sample is one series' value at Gather time.
type Sample struct {
	// Name and Labels identify the series.
	Name   string
	Labels Labels
	// Help is the metric's registered description.
	Help string
	// Kind says how to read the rest: counters and gauges carry Value,
	// histograms carry Hist.
	Kind  Kind
	Value float64
	Hist  *HistogramSnapshot
}

// Gather snapshots every registered series, in registration order (which
// is deterministic for a deterministically wired stack). Callbacks run
// outside the registry lock, so a slow GaugeFunc cannot block concurrent
// registration, and callbacks may themselves take component locks without
// ordering against the registry's.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	order := make([]*instrument, len(r.order))
	copy(order, r.order)
	r.mu.Unlock()
	out := make([]Sample, 0, len(order))
	for _, ins := range order {
		s := Sample{Name: ins.name, Labels: ins.labels, Help: ins.help, Kind: ins.kind}
		switch {
		case ins.counter != nil:
			s.Value = float64(ins.counter.Value())
		case ins.counterFunc != nil:
			s.Value = float64(ins.counterFunc())
		case ins.gauge != nil:
			s.Value = float64(ins.gauge.Value())
		case ins.gaugeFunc != nil:
			s.Value = ins.gaugeFunc()
		case ins.hist != nil:
			s.Hist = ins.hist.Snapshot()
		}
		out = append(out, s)
	}
	return out
}

// View indexes a Gather result for the lookups a stats surface needs.
type View struct {
	samples []Sample
}

// NewView wraps a Gather result.
func NewView(samples []Sample) *View { return &View{samples: samples} }

// Sum adds every series of the metric (all label sets) — how a per-shard
// counter aggregates to the gateway total.
func (v *View) Sum(name string) float64 {
	var sum float64
	for i := range v.samples {
		if v.samples[i].Name == name {
			sum += v.samples[i].Value
		}
	}
	return sum
}

// Value returns the single series' value, 0 when absent.
func (v *View) Value(name string) float64 { return v.Sum(name) }

// Series counts how many label sets the metric has — e.g. the number of
// shards behind a per-shard gauge.
func (v *View) Series(name string) int {
	n := 0
	for i := range v.samples {
		if v.samples[i].Name == name {
			n++
		}
	}
	return n
}
