package obs

import "time"

// Stage names one hop of the serving pipeline. A record batch is stamped
// as it crosses each boundary; the per-stage histograms attribute the
// end-to-end latency a client observes to the hop that spent it — the
// evidence that says whether the next optimization belongs in the codec,
// the shard queue, the mechanism, or the socket.
type Stage int

const (
	// StageIngest is staging residency: first record staged → batch
	// handed to the shard queue (bounded by StageSize/StageInterval).
	StageIngest Stage = iota
	// StageQueue is shard-queue residency: batch enqueued → dequeued by
	// the shard worker (grows under backpressure).
	StageQueue
	// StageFlush is window protection: flush begins → protected window
	// accepted by the gateway output (includes mechanism time and any
	// output-channel backpressure).
	StageFlush
	// StageDispatch is delivery routing: window received by the server's
	// dispatcher → picked up by its connection's writer (includes
	// window-queue residency on a slow-reading connection).
	StageDispatch
	// StageWrite is the wire: connection writer starts encoding → window
	// flushed to the socket.
	StageWrite

	numStages
)

// stageNames are the label values, index-aligned with the constants.
var stageNames = [numStages]string{"ingest", "queue", "flush", "dispatch", "write"}

// String returns the stage's label value.
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return "unknown"
	}
	return stageNames[s]
}

// epoch anchors Stamp. Stamps are durations since process start read off
// Go's monotonic clock — immune to wall-clock steps, and never serialized,
// so the arbitrary zero is invisible.
var epoch = time.Now()

// Stamp returns the current monotonic timestamp in nanoseconds. One call
// is roughly a clock_gettime via the vDSO (~20 ns); serving code stamps
// per batch or per window, never per record, so the cost amortizes to
// well under a nanosecond per record.
func Stamp() int64 { return int64(time.Since(epoch)) }

// Epoch returns the wall-clock instant Stamp counts from, so exports
// that leave the process (trace dumps, flight snapshots) can anchor
// the monotonic timebase to calendar time.
func Epoch() time.Time { return epoch }

// StageClock is the per-stage latency histogram bundle. Constructing one
// on a registry is idempotent — the histograms are get-or-create — so the
// gateway and the HTTP server each build their own clock over the shared
// registry and land in the same series. A nil *StageClock is the disabled
// form: Observe on it is a no-op, which lets serving code keep a single
// unconditional call site.
type StageClock struct {
	stages [numStages]*Histogram
}

// StageLatencyMetric is the series name carrying the per-stage histograms.
const StageLatencyMetric = "lppm_stage_latency_ns"

// NewStageClock registers (or re-acquires) the stage histograms on r and
// returns the clock, or nil when r is disabled — the caller stores the
// result and calls Observe unconditionally.
func NewStageClock(r *Registry) *StageClock {
	if r == nil || r.Disabled() {
		return nil
	}
	c := &StageClock{}
	for st := Stage(0); st < numStages; st++ {
		c.stages[st] = r.Histogram(StageLatencyMetric,
			"per-stage serving latency in nanoseconds, power-of-two buckets",
			Labels{"stage": st.String()})
	}
	return c
}

// Observe records that the batch crossed stage st between the two stamps.
// No-op on a nil clock or a zero start stamp (a batch staged before
// instrumentation was attached).
func (c *StageClock) Observe(st Stage, startNS, nowNS int64) {
	if c == nil || startNS == 0 {
		return
	}
	c.stages[st].Observe(nowNS - startNS)
}

// Hist exposes one stage's histogram (the load generator reuses the write
// stage's type for its client-side latencies; tests read quantiles).
func (c *StageClock) Hist(st Stage) *Histogram {
	if c == nil {
		return nil
	}
	return c.stages[st]
}
