package obs

import (
	"runtime"
	"sync"
)

// memStatsCache throttles runtime.ReadMemStats behind the gauge
// callbacks: every gauge reads the same snapshot, refreshed at most
// once per memStatsMinInterval. ReadMemStats stops the world briefly,
// so it must run only when /metrics is actually scraped (Gather calls
// the callbacks) — never on the serving path — and only once per
// scrape, not once per gauge.
type memStatsCache struct {
	mu     sync.Mutex
	stats  runtime.MemStats
	asOfNS int64
}

const memStatsMinInterval = int64(1e9) // 1s

func (c *memStatsCache) read(f func(*runtime.MemStats) float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := Stamp(); c.asOfNS == 0 || now-c.asOfNS >= memStatsMinInterval {
		runtime.ReadMemStats(&c.stats)
		c.asOfNS = now
	}
	return f(&c.stats)
}

// RegisterRuntimeMetrics exports the process's own pressure signals on
// r: goroutine count, heap footprint, GC activity. Idempotent (the
// registry's get-or-create *Func replacement), read-at-Gather only —
// a process that is never scraped never pays for them.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil || r.Disabled() {
		return
	}
	r.GaugeFunc("go_goroutines",
		"current number of goroutines", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	cache := &memStatsCache{}
	r.GaugeFunc("go_heap_alloc_bytes",
		"bytes of allocated heap objects", nil,
		func() float64 {
			return cache.read(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) })
		})
	r.GaugeFunc("go_heap_sys_bytes",
		"bytes of heap memory obtained from the OS", nil,
		func() float64 {
			return cache.read(func(m *runtime.MemStats) float64 { return float64(m.HeapSys) })
		})
	r.GaugeFunc("go_heap_objects",
		"number of live heap objects", nil,
		func() float64 {
			return cache.read(func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) })
		})
	r.GaugeFunc("go_gc_cycles_total",
		"completed GC cycles since process start", nil,
		func() float64 {
			return cache.read(func(m *runtime.MemStats) float64 { return float64(m.NumGC) })
		})
	r.GaugeFunc("go_gc_pause_total_ns",
		"cumulative GC stop-the-world pause nanoseconds", nil,
		func() float64 {
			return cache.read(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) })
		})
	r.GaugeFunc("go_next_gc_bytes",
		"heap size target for the next GC cycle", nil,
		func() float64 {
			return cache.read(func(m *runtime.MemStats) float64 { return float64(m.NextGC) })
		})
}
