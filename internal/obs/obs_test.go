package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("reqs_total", "requests", Labels{"ep": "a"})
	c2 := r.Counter("reqs_total", "requests", Labels{"ep": "a"})
	if c1 != c2 {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c3 := r.Counter("reqs_total", "requests", Labels{"ep": "b"})
	if c1 == c3 {
		t.Fatal("distinct labels returned the same counter")
	}
	c1.Inc()
	c1.Add(2)
	if got := c2.Value(); got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("thing", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("thing", "", nil)
}

func TestRegistryFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("depth", "", nil, func() float64 { return 1 })
	r.GaugeFunc("depth", "", nil, func() float64 { return 2 })
	v := NewView(r.Gather())
	if got := v.Value("depth"); got != 2 {
		t.Fatalf("after re-registration Value = %v, want the newest callback's 2", got)
	}
	if got := v.Series("depth"); got != 1 {
		t.Fatalf("Series = %d, want 1 (replacement, not duplication)", got)
	}
}

func TestNopRegistryRecordsNothing(t *testing.T) {
	r := Nop()
	if !r.Disabled() {
		t.Fatal("Nop registry not Disabled")
	}
	c := r.Counter("x", "", nil)
	c.Inc() // must be usable, just unobserved
	g := r.Gauge("y", "", nil)
	g.Set(5)
	r.Histogram("z", "", nil).Observe(10)
	r.CounterFunc("f", "", nil, func() uint64 { return 9 })
	if got := len(r.Gather()); got != 0 {
		t.Fatalf("Nop Gather returned %d samples, want 0", got)
	}
	if NewStageClock(r) != nil {
		t.Fatal("NewStageClock on Nop registry should be nil")
	}
	// nil clock is safe to use.
	var clk *StageClock
	clk.Observe(StageIngest, 1, 2)
}

func TestViewSumAcrossLabels(t *testing.T) {
	r := NewRegistry()
	for i, n := range []uint64{3, 5, 7} {
		r.Counter("shard_total", "", Labels{"shard": fmt.Sprint(i)}).Add(n)
	}
	v := NewView(r.Gather())
	if got := v.Sum("shard_total"); got != 15 {
		t.Fatalf("Sum = %v, want 15", got)
	}
	if got := v.Series("shard_total"); got != 3 {
		t.Fatalf("Series = %d, want 3", got)
	}
	if got := v.Sum("absent"); got != 0 {
		t.Fatalf("Sum(absent) = %v, want 0", got)
	}
}

func TestStageClockSharedAcrossConstructions(t *testing.T) {
	r := NewRegistry()
	a := NewStageClock(r)
	b := NewStageClock(r)
	a.Observe(StageFlush, 100, 300)
	if got := b.Hist(StageFlush).Count(); got != 1 {
		t.Fatalf("second clock sees %d observations, want 1 (shared series)", got)
	}
	if got := b.Hist(StageFlush).Snapshot().Sum; got != 200 {
		t.Fatalf("Sum = %d, want 200", got)
	}
	// Zero start stamp (pre-instrumentation batch) is skipped.
	a.Observe(StageFlush, 0, 500)
	if got := b.Hist(StageFlush).Count(); got != 1 {
		t.Fatalf("zero-start stamp was recorded; count = %d, want 1", got)
	}
}

func TestStampMonotone(t *testing.T) {
	a := Stamp()
	b := Stamp()
	if b < a {
		t.Fatalf("Stamp went backwards: %d then %d", a, b)
	}
}

// parsePromText is a minimal Prometheus text-format parser: it validates
// line shapes and returns sample name → value. Histogram series appear
// under their _bucket/_sum/_count names.
func parsePromText(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			if len(strings.Fields(line)) < 4 {
				t.Fatalf("malformed comment line: %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		var v float64
		if _, err := fmt.Sscanf(valStr, "%g", &v); err != nil {
			t.Fatalf("unparseable value %q in line %q: %v", valStr, line, err)
		}
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unbalanced label braces: %q", line)
			}
		}
		out[series] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("lppm_reqs_total", "total requests", Labels{"ep": "stream"}).Add(7)
	r.Gauge("lppm_inflight", "in-flight requests", nil).Set(3)
	h := r.Histogram("lppm_lat_ns", "latency", Labels{"stage": "write"})
	h.Observe(100)
	h.Observe(5000)
	h.Observe(int64(1) << 50) // overflow

	var b bytes.Buffer
	if err := WritePrometheus(&b, r.Gather()); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	samples := parsePromText(t, body)

	if got := samples[`lppm_reqs_total{ep="stream"}`]; got != 7 {
		t.Errorf("counter sample = %v, want 7", got)
	}
	if got := samples["lppm_inflight"]; got != 3 {
		t.Errorf("gauge sample = %v, want 3", got)
	}
	if got := samples[`lppm_lat_ns_count{stage="write"}`]; got != 3 {
		t.Errorf("hist count = %v, want 3", got)
	}
	inf := samples[`lppm_lat_ns_bucket{le="+Inf",stage="write"}`]
	if inf != 3 {
		t.Errorf("+Inf bucket = %v, want 3 (cumulative total)", inf)
	}
	// Cumulative buckets must be non-decreasing in le.
	var prev float64
	for i := 0; i < NumBuckets-1; i++ {
		key := fmt.Sprintf(`lppm_lat_ns_bucket{le="%d",stage="write"}`, BucketUpper(i))
		cur, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket series %s", key)
		}
		if cur < prev {
			t.Fatalf("bucket series not cumulative at le=%d: %v < %v", BucketUpper(i), cur, prev)
		}
		prev = cur
	}
	// HELP/TYPE emitted once per metric name even with multiple series.
	r.Counter("lppm_reqs_total", "total requests", Labels{"ep": "stats"}).Inc()
	b.Reset()
	if err := WritePrometheus(&b, r.Gather()); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "# TYPE lppm_reqs_total "); got != 1 {
		t.Errorf("TYPE line appears %d times, want 1", got)
	}
}

func TestWriteJSONSquashesNaN(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("lppm_drift", "", nil, func() float64 { return math.NaN() })
	var b bytes.Buffer
	if err := WriteJSON(&b, r.Gather()); err != nil {
		t.Fatalf("WriteJSON with NaN gauge: %v", err)
	}
	var out []map[string]any
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("got %d metrics, want 1", len(out))
	}
	if v, ok := out[0]["value"]; ok && v != 0.0 {
		t.Fatalf("NaN gauge serialized as %v, want squashed to 0", v)
	}
}

func TestAdminMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("lppm_x_total", "x", nil).Inc()
	mux := AdminMux(r)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	if rec := get("/metrics"); rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	} else {
		parsePromText(t, rec.Body.String())
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("/metrics content-type = %q", ct)
		}
	}
	if rec := get("/metrics.json"); rec.Code != 200 {
		t.Fatalf("/metrics.json status = %d", rec.Code)
	} else {
		var out []jsonMetric
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("/metrics.json not valid JSON: %v", err)
		}
	}
	if rec := get("/debug/pprof/"); rec.Code != 200 {
		t.Fatalf("/debug/pprof/ status = %d", rec.Code)
	}
	// POST to /metrics is rejected.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics status = %d, want 405", rec.Code)
	}
}
