package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the histogram's fixed bucket count. Bucket 0 holds exact
// zeros (and clamped negatives); bucket k in [1, NumBuckets-2] holds
// values v with 2^(k-1) <= v < 2^k; the last bucket is the overflow for
// everything at or above 2^(NumBuckets-2). In nanoseconds that overflow
// boundary is 2^38 ns ≈ 4.6 minutes — far beyond any latency the serving
// path should ever see, and a visible smoking gun if it does.
const NumBuckets = 40

// Histogram is a lock-free fixed-bucket distribution with power-of-two
// bucket boundaries — the one latency type shared by the server's stage
// clock and the load generator's client-side report, so the two sides
// quote comparable quantiles. Observe is a single atomic add on the
// bucket plus one on the sum: allocation-free, wait-free, safe from any
// number of goroutines. Quantiles are estimated from the bucket counts
// (midpoint of the covering bucket), so the error is bounded by one
// bucket width — a factor-of-two resolution that is exactly what a
// latency percentile needs and what an unbounded sorted-sample slice
// wastes memory to exceed.
//
// Values are unit-agnostic int64s; the serving stack records nanoseconds.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	k := bits.Len64(uint64(v))
	if k > NumBuckets-1 {
		return NumBuckets - 1
	}
	return k
}

// BucketUpper returns bucket i's exclusive upper bound, with the overflow
// bucket unbounded (reported as +Inf by the Prometheus exposition).
// BucketLower is 0 for buckets 0 and 1, 2^(i-1) otherwise.
func BucketUpper(i int) int64 {
	if i >= NumBuckets-1 {
		return int64(1) << 62 // sentinel; exposition renders +Inf
	}
	return int64(1) << uint(i)
}

// bucketBounds returns [lo, hi) for bucket i, hi exclusive; the overflow
// bucket reports hi == lo (unknown width).
func bucketBounds(i int) (lo, hi int64) {
	switch {
	case i == 0:
		return 0, 0
	case i >= NumBuckets-1:
		lo = int64(1) << uint(NumBuckets-2)
		return lo, lo
	default:
		return int64(1) << uint(i-1), int64(1) << uint(i)
	}
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// Snapshot captures the bucket counts and sum. Under concurrent writers
// the counts are each individually exact but may straddle in-flight
// observations relative to one another; quantiles computed from a
// snapshot are internally consistent because they derive the total from
// the captured buckets, never from a separately read counter.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{Sum: h.sum.Load()}
	var total uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		total += c
	}
	s.Count = total
	return s
}

// Quantile estimates the q-quantile; see HistogramSnapshot.Quantile.
func (h *Histogram) Quantile(q float64) int64 { return h.Snapshot().Quantile(q) }

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Counts holds per-bucket (non-cumulative) observation counts.
	Counts [NumBuckets]uint64
	// Count is the total number of observations in Counts.
	Count uint64
	// Sum is the sum of all observed values.
	Sum int64
}

// Quantile estimates the q-quantile (q clamped to [0, 1]) from the bucket
// counts: the returned value is the midpoint of the bucket containing the
// rank-⌈q·n⌉ observation, so it differs from the exact order statistic by
// less than one bucket width. Zero observations yield 0; the overflow
// bucket yields its lower bound (its width is unknown). Monotone in q by
// construction — the cumulative walk can only move right.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum >= rank {
			lo, hi := bucketBounds(i)
			if hi <= lo {
				return lo // zero bucket or overflow: no interior to split
			}
			return lo + (hi-lo)/2
		}
	}
	lo, _ := bucketBounds(NumBuckets - 1)
	return lo
}

// Mean returns the exact average of the observed values (the sum is
// tracked exactly, not reconstructed from buckets), 0 with no data.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// BucketWidthAt returns the width of the bucket that covers v — the
// resolution bound a quantile estimate near v carries. The zero and
// overflow buckets report 0 (exact and unbounded respectively).
func BucketWidthAt(v int64) int64 {
	lo, hi := bucketBounds(bucketOf(v))
	if hi <= lo {
		return 0
	}
	return hi - lo
}
