package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestHistogramZeroObservations(t *testing.T) {
	var h Histogram
	if got := h.Count(); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("empty snapshot = {Count:%d Sum:%d}, want zeros", s.Count, s.Sum)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) on empty = %d, want 0", q, got)
		}
	}
	if got := s.Mean(); got != 0 {
		t.Errorf("Mean on empty = %v, want 0", got)
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	var h Histogram
	// 100 values all inside bucket [64, 128).
	for i := 0; i < 100; i++ {
		h.Observe(64 + int64(i%64))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	nonEmpty := 0
	for i, c := range s.Counts {
		if c > 0 {
			nonEmpty++
			if lo, hi := bucketBounds(i); lo != 64 || hi != 128 {
				t.Errorf("values landed in bucket [%d, %d), want [64, 128)", lo, hi)
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("non-empty buckets = %d, want 1", nonEmpty)
	}
	// Every quantile must quote the one occupied bucket's midpoint.
	want := int64(64 + (128-64)/2)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %d, want %d", q, got, want)
		}
	}
}

func TestHistogramZerosAndNegatives(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	s := h.Snapshot()
	if s.Counts[0] != 2 {
		t.Fatalf("zero bucket count = %d, want 2", s.Counts[0])
	}
	if s.Sum != 0 {
		t.Fatalf("Sum = %d, want 0 (negatives clamp)", s.Sum)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("Quantile(0.5) = %d, want 0", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	huge := int64(1) << 50 // far beyond the 2^38 overflow boundary
	h.Observe(huge)
	h.Observe(int64(1) << 62)
	s := h.Snapshot()
	if got := s.Counts[NumBuckets-1]; got != 2 {
		t.Fatalf("overflow bucket count = %d, want 2", got)
	}
	// The overflow bucket has no interior: quantiles quote its lower bound.
	wantLo := int64(1) << (NumBuckets - 2)
	if got := s.Quantile(0.99); got != wantLo {
		t.Fatalf("Quantile(0.99) = %d, want overflow lower bound %d", got, wantLo)
	}
	if s.Sum != huge+int64(1)<<62 {
		t.Fatalf("Sum = %d, want exact sum despite bucketing", s.Sum)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		var h Histogram
		n := 1 + rnd.Intn(2000)
		for i := 0; i < n; i++ {
			// Mix scales so many buckets are hit, including overflow.
			v := rnd.Int63n(int64(1) << uint(1+rnd.Intn(45)))
			h.Observe(v)
		}
		s := h.Snapshot()
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			got := s.Quantile(q)
			if got < prev {
				t.Fatalf("trial %d: Quantile(%v) = %d < Quantile(prev) = %d", trial, q, got, prev)
			}
			prev = got
		}
	}
}

func TestHistogramQuantileWithinBucketWidth(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	var h Histogram
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rnd.Int63n(1 << 30)
		h.Observe(vals[i])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		rank := int(q * float64(len(vals)))
		if rank >= len(vals) {
			rank = len(vals) - 1
		}
		exact := vals[rank]
		got := s.Quantile(q)
		width := BucketWidthAt(exact)
		diff := got - exact
		if diff < 0 {
			diff = -diff
		}
		if diff > width {
			t.Errorf("Quantile(%v) = %d vs exact %d: off by %d > bucket width %d", q, got, exact, diff, width)
		}
	}
}

func TestHistogramConcurrentWriters(t *testing.T) {
	var h Histogram
	const (
		writers = 8
		perW    = 10000
	)
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				h.Observe(rnd.Int63n(1 << 20))
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*perW {
		t.Fatalf("Count = %d, want %d (lost updates)", s.Count, writers*perW)
	}
	var fromBuckets uint64
	for _, c := range s.Counts {
		fromBuckets += c
	}
	if fromBuckets != s.Count {
		t.Fatalf("bucket total %d != Count %d", fromBuckets, s.Count)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {127, 7}, {128, 8},
		{int64(1) << 37, NumBuckets - 2},
		{int64(1) << 38, NumBuckets - 1},
		{int64(1)<<38 - 1, NumBuckets - 2},
		{int64(1) << 60, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Invariant: every bucketed value lies within its bucket's bounds.
	for _, v := range []int64{1, 5, 100, 1 << 20, 1<<38 - 1} {
		lo, hi := bucketBounds(bucketOf(v))
		if v < lo || (hi > lo && v >= hi) {
			t.Errorf("value %d outside its bucket [%d, %d)", v, lo, hi)
		}
	}
}
