package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
)

// captureSink collects every LogEvent the handler tees.
type captureSink struct{ events []LogEvent }

func (s *captureSink) LogEvent(e LogEvent) { s.events = append(s.events, e) }

// TestLoggerCorrelation checks the three joins NewLogger provides: the
// deployment generation on every record, trace attributes pulled from
// the context, and a rendered copy teed into the sink.
func TestLoggerCorrelation(t *testing.T) {
	var buf bytes.Buffer
	sink := &captureSink{}
	gen := uint64(7)
	log := NewLogger(&buf, LoggerOptions{
		Generation: func() uint64 { return gen },
		ContextAttrs: func(ctx context.Context) []slog.Attr {
			if v, ok := ctx.Value(ctxKeyTest{}).(string); ok {
				return []slog.Attr{slog.String("trace_id", v)}
			}
			return nil
		},
		Sink: sink,
	})

	ctx := context.WithValue(context.Background(), ctxKeyTest{}, "cafe01")
	log.InfoContext(ctx, "window flushed", "user", "u00")
	gen = 8
	log.WarnContext(context.Background(), "drift")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	for _, want := range []string{"msg=\"window flushed\"", "user=u00", "gen=7", "trace_id=cafe01"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("line 1 missing %q: %s", want, lines[0])
		}
	}
	if !strings.Contains(lines[1], "gen=8") || strings.Contains(lines[1], "trace_id") {
		t.Errorf("line 2 wrong correlation: %s", lines[1])
	}

	if len(sink.events) != 2 {
		t.Fatalf("sink got %d events, want 2", len(sink.events))
	}
	e := sink.events[0]
	if e.Level != "INFO" || e.Msg != "window flushed" || e.WhenNS == 0 {
		t.Fatalf("sink event 1 = %+v", e)
	}
	got := map[string]string{}
	for _, a := range e.Attrs {
		got[a.Key] = a.Val
	}
	if got["user"] != "u00" || got["gen"] != "7" || got["trace_id"] != "cafe01" {
		t.Fatalf("sink attrs = %v", e.Attrs)
	}
	if sink.events[1].Level != "WARN" {
		t.Fatalf("sink event 2 = %+v", sink.events[1])
	}
}

type ctxKeyTest struct{}

// TestLoggerLevelGate: records below the configured level reach neither
// the writer nor the sink.
func TestLoggerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	sink := &captureSink{}
	log := NewLogger(&buf, LoggerOptions{Level: slog.LevelWarn, Sink: sink})
	log.Info("quiet")
	log.Warn("loud")
	if strings.Contains(buf.String(), "quiet") || len(sink.events) != 1 {
		t.Fatalf("level gate leaked: out=%q sink=%d", buf.String(), len(sink.events))
	}
}
