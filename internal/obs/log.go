package obs

import (
	"context"
	"io"
	"log/slog"
)

// LogAttr is one rendered attribute of a captured log event. Ordered
// list, not a map, so flight-recorder output is deterministic.
type LogAttr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// LogEvent is a structured-log record as captured for the flight
// recorder: everything rendered to strings, stamped on the Stamp()
// monotonic timebase.
type LogEvent struct {
	Seq    uint64    `json:"seq"`
	WhenNS int64     `json:"when_ns"`
	Level  string    `json:"level"`
	Msg    string    `json:"msg"`
	Attrs  []LogAttr `json:"attrs,omitempty"`
}

// LogSink receives every record the Logger handles — the flight
// recorder's hook. Implementations must be safe for concurrent use
// and must not block (they run inline with the logging call).
type LogSink interface {
	LogEvent(LogEvent)
}

// LoggerOptions configures NewLogger. The zero value is usable: info
// level, no correlation, no sink.
type LoggerOptions struct {
	// Level is the minimum level to emit; nil means slog.LevelInfo.
	Level slog.Leveler
	// ContextAttrs, when non-nil, extracts correlation attributes from
	// the logging context — tracing.ContextAttrs stamps trace_id and
	// span_id so logs join spans on one key.
	ContextAttrs func(context.Context) []slog.Attr
	// Generation, when non-nil, stamps every record with the current
	// deployment generation — logs join metrics and swap history.
	Generation func() uint64
	// Sink, when non-nil, receives a rendered copy of every record
	// (the flight recorder). A typed-nil sink is tolerated.
	Sink LogSink
}

// NewLogger builds the serving plane's structured logger: slog text
// output to w, with every record stamped with the deployment
// generation and any trace/span identity carried by the context, and
// teed into the flight recorder's log buffer. This is the replacement
// for ad-hoc stdlib log in the daemons — one record, three joins
// (logs ↔ spans ↔ metrics).
func NewLogger(w io.Writer, opts LoggerOptions) *slog.Logger {
	level := opts.Level
	if level == nil {
		level = slog.LevelInfo
	}
	inner := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(&handler{inner: inner, opts: opts})
}

// handler decorates a slog.Handler with generation + trace stamping
// and the sink tee.
type handler struct {
	inner slog.Handler
	opts  LoggerOptions
}

func (h *handler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *handler) Handle(ctx context.Context, rec slog.Record) error {
	if h.opts.Generation != nil {
		rec.AddAttrs(slog.Uint64("gen", h.opts.Generation()))
	}
	if h.opts.ContextAttrs != nil {
		if attrs := h.opts.ContextAttrs(ctx); len(attrs) > 0 {
			rec.AddAttrs(attrs...)
		}
	}
	if h.opts.Sink != nil {
		e := LogEvent{
			WhenNS: Stamp(),
			Level:  rec.Level.String(),
			Msg:    rec.Message,
		}
		rec.Attrs(func(a slog.Attr) bool {
			e.Attrs = append(e.Attrs, LogAttr{Key: a.Key, Val: a.Value.String()})
			return true
		})
		h.opts.Sink.LogEvent(e)
	}
	return h.inner.Handle(ctx, rec)
}

func (h *handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &handler{inner: h.inner.WithAttrs(attrs), opts: h.opts}
}

func (h *handler) WithGroup(name string) slog.Handler {
	return &handler{inner: h.inner.WithGroup(name), opts: h.opts}
}
