package repro_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/lppm"
	"repro/internal/service"
	"repro/internal/trace"
)

// gatewayShardCounts are the shard configurations the throughput benchmark
// compares.
var gatewayShardCounts = []int{1, 4, 8}

// gatewayWorkload builds interleaved per-user streams, each producer slice
// covering a disjoint user set so concurrent ingestion preserves per-user
// time order.
func gatewayWorkload(users, perUser, producers int) [][]trace.Record {
	t0 := time.Date(2008, 5, 17, 0, 0, 0, 0, time.UTC)
	base := geo.Point{Lat: 37.7749, Lng: -122.4194}
	slices := make([][]trace.Record, producers)
	for p := range slices {
		var recs []trace.Record
		for i := 0; i < perUser; i++ {
			for u := p; u < users; u += producers {
				recs = append(recs, trace.Record{
					User:  fmt.Sprintf("driver-%03d", u),
					Time:  t0.Add(time.Duration(i) * 30 * time.Second),
					Point: base.Offset(float64(i)*40, float64(u)*25),
				})
			}
		}
		slices[p] = recs
	}
	return slices
}

// runGatewayPass streams every producer slice through a fresh gateway and
// verifies all records come back protected.
func runGatewayPass(b *testing.B, shards int, slices [][]trace.Record, total int, seed int64) {
	b.Helper()
	cfg := service.Config{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Shards:     shards,
		QueueSize:  512,
		FlushEvery: 8,
		Seed:       seed,
	}
	g, err := service.New(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	consumed := make(chan int)
	go func() {
		n := 0
		for batch := range g.Output() {
			n += len(batch)
		}
		consumed <- n
	}()
	errs := make(chan error, len(slices))
	for _, recs := range slices {
		go func(recs []trace.Record) {
			errs <- g.IngestAll(recs)
		}(recs)
	}
	for range slices {
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
	if err := g.Close(); err != nil {
		b.Fatal(err)
	}
	if n := <-consumed; n != total {
		b.Fatalf("protected %d of %d records", n, total)
	}
}

// BenchmarkGatewayThroughput measures end-to-end gateway throughput —
// ingest, shard routing, windowed GEO-I protection, emission — and reports
// points/sec for 1, 4 and 8 shards. The shard configurations are
// interleaved within every iteration so all three see the same machine
// conditions; sequential per-config runs would let load drift on shared
// hardware swamp the shard effect. The per-record cost is dominated by
// exact planar-Laplace sampling (Lambert W), so on multi-core hardware
// throughput rises with shards until routing saturates; on a single core
// the margin comes from smaller per-shard user tables and per-shard queue
// and output-buffer slack.
func BenchmarkGatewayThroughput(b *testing.B) {
	const (
		users     = 192
		perUser   = 250
		producers = 4
	)
	slices := gatewayWorkload(users, perUser, producers)
	total := users * perUser
	elapsed := make([]time.Duration, len(gatewayShardCounts))
	// One untimed pass per configuration warms the heap and page tables.
	for _, shards := range gatewayShardCounts {
		runGatewayPass(b, shards, slices, total, 0)
	}
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		for ci, shards := range gatewayShardCounts {
			start := time.Now()
			runGatewayPass(b, shards, slices, total, int64(iter+1))
			elapsed[ci] += time.Since(start)
		}
	}
	for ci, shards := range gatewayShardCounts {
		b.ReportMetric(float64(total*b.N)/elapsed[ci].Seconds(),
			fmt.Sprintf("points/sec:%dshard", shards))
	}
}
