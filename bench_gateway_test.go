package repro_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/service"
	"repro/internal/trace"
)

// gatewayShardCounts are the shard configurations the throughput benchmark
// compares.
var gatewayShardCounts = []int{1, 4, 8}

// gatewayWorkload builds interleaved per-user streams, each producer slice
// covering a disjoint user set so concurrent ingestion preserves per-user
// time order.
func gatewayWorkload(users, perUser, producers int) [][]trace.Record {
	t0 := time.Date(2008, 5, 17, 0, 0, 0, 0, time.UTC)
	base := geo.Point{Lat: 37.7749, Lng: -122.4194}
	slices := make([][]trace.Record, producers)
	for p := range slices {
		var recs []trace.Record
		for i := 0; i < perUser; i++ {
			for u := p; u < users; u += producers {
				recs = append(recs, trace.Record{
					User:  fmt.Sprintf("driver-%03d", u),
					Time:  t0.Add(time.Duration(i) * 30 * time.Second),
					Point: base.Offset(float64(i)*40, float64(u)*25),
				})
			}
		}
		slices[p] = recs
	}
	return slices
}

// runGatewayPass streams every producer slice through a fresh gateway and
// verifies all records come back protected. With sampled set, a
// reconfiguration controller taps the flushed windows at its default 5%
// sampling rate (the loop's steady-state hot-path cost; evaluations are
// off-path and not measured here).
func runGatewayPass(b *testing.B, shards int, slices [][]trace.Record, total int, seed int64, sampled bool) {
	b.Helper()
	mech := lppm.NewGeoIndistinguishability()
	cfg := service.Config{
		Mechanism:  mech,
		Shards:     shards,
		QueueSize:  512,
		FlushEvery: 8,
		Seed:       seed,
	}
	g, err := service.New(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if sampled {
		dep, err := core.NewDeployment(mech, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := service.NewController(g, dep, service.ControllerConfig{
			Definition: core.Definition{
				Mechanism: mech,
				Privacy:   metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
				Utility:   metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
			},
			Objectives: model.Objectives{MaxPrivacy: 0.95, MinUtility: 0.05},
			Seed:       seed,
		}); err != nil {
			b.Fatal(err)
		}
	}
	consumed := make(chan int)
	go func() {
		n := 0
		for wnd := range g.Output() {
			n += len(wnd.Records)
		}
		consumed <- n
	}()
	errs := make(chan error, len(slices))
	for _, recs := range slices {
		go func(recs []trace.Record) {
			errs <- g.IngestAll(recs)
		}(recs)
	}
	for range slices {
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
	if err := g.Close(); err != nil {
		b.Fatal(err)
	}
	if n := <-consumed; n != total {
		b.Fatalf("protected %d of %d records", n, total)
	}
}

// BenchmarkGatewayThroughput measures end-to-end gateway throughput —
// ingest, shard routing, windowed GEO-I protection, emission — and reports
// points/sec for 1, 4 and 8 shards. The shard configurations are
// interleaved within every iteration so all three see the same machine
// conditions; sequential per-config runs would let load drift on shared
// hardware swamp the shard effect. The per-record cost is dominated by
// exact planar-Laplace sampling (Lambert W), so on multi-core hardware
// throughput rises with shards until routing saturates; on a single core
// the margin comes from smaller per-shard user tables and per-shard queue
// and output-buffer slack.
func BenchmarkGatewayThroughput(b *testing.B) {
	const (
		users     = 192
		perUser   = 250
		producers = 4
	)
	slices := gatewayWorkload(users, perUser, producers)
	total := users * perUser
	elapsed := make([]time.Duration, len(gatewayShardCounts))
	// One untimed pass per configuration warms the heap and page tables.
	for _, shards := range gatewayShardCounts {
		runGatewayPass(b, shards, slices, total, 0, false)
	}
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		for ci, shards := range gatewayShardCounts {
			start := time.Now()
			runGatewayPass(b, shards, slices, total, int64(iter+1), false)
			elapsed[ci] += time.Since(start)
		}
	}
	for ci, shards := range gatewayShardCounts {
		b.ReportMetric(float64(total*b.N)/elapsed[ci].Seconds(),
			fmt.Sprintf("points/sec:%dshard", shards))
	}
}

// BenchmarkGatewayControllerOverhead measures what attaching the
// reconfiguration controller costs the serving hot path: the same workload
// with the tap off and with 5% window sampling on, interleaved within every
// iteration (same single-CPU discipline as above) so shared-host load drift
// cannot masquerade as controller overhead. The budget is < 5% regression;
// the steady-state cost is one atomic load per flush plus a Bernoulli draw
// and, on the sampled 5%, copying one window into the sliding aggregates.
func BenchmarkGatewayControllerOverhead(b *testing.B) {
	const (
		users     = 192
		perUser   = 250
		producers = 4
		shards    = 4
	)
	slices := gatewayWorkload(users, perUser, producers)
	total := users * perUser
	modes := []bool{false, true}
	elapsed := make([]time.Duration, len(modes))
	for _, sampled := range modes {
		runGatewayPass(b, shards, slices, total, 0, sampled)
	}
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		// Alternate which mode goes first: with only two configs, a fixed
		// order would let slow host-load oscillations masquerade as a
		// systematic mode difference.
		for k := range modes {
			mi := (iter + k) % len(modes)
			start := time.Now()
			runGatewayPass(b, shards, slices, total, int64(iter+1), modes[mi])
			elapsed[mi] += time.Since(start)
		}
	}
	off := float64(total*b.N) / elapsed[0].Seconds()
	on := float64(total*b.N) / elapsed[1].Seconds()
	b.ReportMetric(off, "points/sec:off")
	b.ReportMetric(on, "points/sec:sampled")
	b.ReportMetric((off-on)/off*100, "overhead:%")
}
