// Alpcompare: the X2 extension experiment. The paper positions ALP
// (Primault et al., SRDS'16) as the only prior automated configurator — a
// greedy search that repeatedly protects and re-evaluates the dataset. This
// example runs both approaches for the same objectives and compares (a) the
// configuration they find and (b) the number of protect-and-evaluate passes
// each spends, showing why an invertible offline model makes configuration
// "easy": after one sweep, every new objective costs zero further
// evaluations.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/alp"
	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	gen := synth.DefaultConfig()
	gen.NumDrivers = 20
	gen.Duration = 12 * time.Hour
	fleet, err := synth.Generate(gen, nil)
	if err != nil {
		log.Fatal(err)
	}
	dataset := fleet.Dataset

	privacy := metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig())
	utility := metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig())

	objectives := []model.Objectives{
		{MaxPrivacy: 0.10, MinUtility: 0.80}, // the paper's headline
		{MaxPrivacy: 0.25, MinUtility: 0.70},
		{MaxPrivacy: 0.05, MinUtility: 0.60},
	}

	// --- Our framework: one offline sweep, then free inversions. ---
	def := core.Definition{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Privacy:    privacy,
		Utility:    utility,
		GridPoints: 25,
		Repeats:    2,
		Seed:       5,
	}
	start := time.Now()
	analysis, err := core.Analyze(context.Background(), def, dataset)
	if err != nil {
		log.Fatal(err)
	}
	sweepCost := def.GridPoints * def.Repeats
	fmt.Printf("framework: one-time modeling sweep = %d evaluations (%v)\n",
		sweepCost, time.Since(start).Round(time.Millisecond))

	for _, obj := range objectives {
		cfg, err := analysis.Configure(obj)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  objectives (Pr≤%.2f, Ut≥%.2f): ε=%.4g feasible=%v, +0 evaluations\n",
			obj.MaxPrivacy, obj.MinUtility, cfg.Value, cfg.Feasible)
	}

	// --- ALP: a fresh greedy search per objective. ---
	fmt.Println("\nALP greedy baseline:")
	totalALP := 0
	for _, obj := range objectives {
		cfg := &alp.Config{
			Mechanism:         lppm.NewGeoIndistinguishability(),
			Param:             lppm.EpsilonParam,
			PrivacyMetric:     privacy,
			UtilityMetric:     utility,
			MaxPrivacy:        obj.MaxPrivacy,
			MinUtility:        obj.MinUtility,
			MaxEvaluations:    60,
			InitialStepFactor: 4,
			// An uninformed designer starts at the no-noise end.
			InitialValue: 1,
			Seed:         9,
		}
		start := time.Now()
		res, err := alp.Run(context.Background(), cfg, dataset)
		if err != nil {
			log.Fatal(err)
		}
		totalALP += res.Evaluations
		fmt.Printf("  objectives (Pr≤%.2f, Ut≥%.2f): ε=%.4g satisfied=%v after %d evaluations (%v)\n",
			obj.MaxPrivacy, obj.MinUtility, res.Best.Value, res.Satisfied,
			res.Evaluations, time.Since(start).Round(time.Millisecond))
	}

	fmt.Printf("\ntotals for %d objective sets: framework %d evaluations, ALP %d evaluations\n",
		len(objectives), sweepCost, totalALP)
	if totalALP > sweepCost {
		fmt.Printf("the offline model amortizes after %d objective changes\n",
			1+sweepCost/max(1, totalALP/len(objectives)))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
