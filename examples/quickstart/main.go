// Quickstart: configure Geo-Indistinguishability for "leak at most 10 % of
// POIs while keeping 80 % area-coverage utility" — the paper's headline
// walkthrough — in a few lines against a synthetic San-Francisco taxi fleet.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// A day of 30 synthetic cabs (the cabspotting stand-in).
	gen := synth.DefaultConfig()
	gen.NumDrivers = 30
	gen.Duration = 12 * time.Hour
	fleet, err := synth.Generate(gen, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d users, %d records\n",
		fleet.Dataset.NumUsers(), fleet.Dataset.NumRecords())

	// Step 1 — define the system: GEO-I, the paper's two metrics.
	def := core.Definition{
		Mechanism: lppm.NewGeoIndistinguishability(),
		Privacy:   metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		Utility:   metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		Repeats:   2,
		Seed:      42,
	}

	// Step 2 — model: sweep ε, fit Pr = a + b·ln(ε) and Ut = α + β·ln(ε).
	analysis, err := core.Analyze(context.Background(), def, fleet.Dataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Equation 2 fitted: a=%.3f b=%.3f | α=%.3f β=%.3f\n",
		analysis.PrivacyModel.A, analysis.PrivacyModel.B,
		analysis.UtilityModel.A, analysis.UtilityModel.B)

	// Step 3 — configure: invert the models under the objectives.
	cfg, err := analysis.Configure(model.Objectives{MaxPrivacy: 0.10, MinUtility: 0.80})
	if err != nil {
		log.Fatal(err)
	}
	if !cfg.Feasible {
		log.Fatalf("objectives infeasible: %+v", cfg)
	}
	fmt.Printf("deploy GEO-I with ε = %.4g (feasible range [%.4g, %.4g])\n",
		cfg.Value, cfg.Min, cfg.Max)
	fmt.Printf("predicted: %.1f%% of POIs retrievable, %.0f%% utility\n",
		100*cfg.PredictedPrivacy, 100*cfg.PredictedUtility)
}
