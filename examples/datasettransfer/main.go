// Dataset transfer: the paper's future work asks how the fitted model
// moves across datasets. This example runs the identical framework
// definition over two archetypes — roaming taxis and pendulum commuters —
// and shows that (1) the Equation-2 constants are dataset-specific, (2) a
// configuration tuned on taxis misses its objectives on commuters, and
// (3) re-running the automated pipeline on the right dataset fixes it.
// That gap is exactly why framework step 1 screens dataset properties d_i.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)

	taxiCfg := synth.DefaultConfig()
	taxiCfg.NumDrivers = 20
	taxiCfg.Duration = 12 * time.Hour
	taxis, err := synth.Generate(taxiCfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	commCfg := synth.DefaultCommuterConfig()
	commCfg.NumUsers = 20
	commCfg.Days = 2
	commuters, err := synth.GenerateCommuters(commCfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("taxis:     %d users, %d records\n", taxis.Dataset.NumUsers(), taxis.Dataset.NumRecords())
	fmt.Printf("commuters: %d users, %d records\n", commuters.Dataset.NumUsers(), commuters.Dataset.NumRecords())

	def := core.Definition{
		Mechanism: lppm.NewGeoIndistinguishability(),
		Privacy:   metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		Utility:   metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		Repeats:   2,
		Seed:      42,
	}
	obj := model.Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}

	taxiAnalysis, err := core.Analyze(context.Background(), def, taxis.Dataset)
	if err != nil {
		log.Fatal(err)
	}
	commAnalysis, err := core.Analyze(context.Background(), def, commuters.Dataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEquation 2 on taxis:     Pr = %.3f + %.3f·ln(ε) | Ut = %.3f + %.3f·ln(ε)\n",
		taxiAnalysis.PrivacyModel.A, taxiAnalysis.PrivacyModel.B,
		taxiAnalysis.UtilityModel.A, taxiAnalysis.UtilityModel.B)
	fmt.Printf("Equation 2 on commuters: Pr = %.3f + %.3f·ln(ε) | Ut = %.3f + %.3f·ln(ε)\n",
		commAnalysis.PrivacyModel.A, commAnalysis.PrivacyModel.B,
		commAnalysis.UtilityModel.A, commAnalysis.UtilityModel.B)

	taxiCfgd, err := taxiAnalysis.Configure(obj)
	if err != nil {
		log.Fatal(err)
	}
	commCfgd, err := commAnalysis.Configure(obj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntaxis:     objectives feasible=%v, recommended ε=%.4g\n", taxiCfgd.Feasible, taxiCfgd.Value)
	fmt.Printf("commuters: objectives feasible=%v", commCfgd.Feasible)
	if !commCfgd.Feasible {
		// The same objectives that work on taxis have no window on
		// commuters — their POIs (overnight home dwells) survive far
		// more noise. The framework says so instead of guessing, and
		// the Pareto knee is the honest fallback.
		front, err := commAnalysis.Pareto()
		if err != nil {
			log.Fatal(err)
		}
		if knee, ok := model.KneePoint(front); ok {
			fmt.Printf(" — best balanced trade-off instead: ε=%.4g (privacy %.3f, utility %.3f)",
				knee.X, knee.Privacy, knee.Utility)
		}
	} else {
		fmt.Printf(", recommended ε=%.4g", commCfgd.Value)
	}
	fmt.Println()

	// The crux: the *same* ε produces different outcomes on the two
	// populations, so a configuration cannot be transferred blindly.
	prTaxi, utTaxi := measure(taxis.Dataset, taxiCfgd.Value)
	prComm, utComm := measure(commuters.Dataset, taxiCfgd.Value)
	fmt.Printf("\nat the taxi-tuned ε=%.4g:\n", taxiCfgd.Value)
	fmt.Printf("  taxis:     privacy %.3f, utility %.3f (meets Pr ≤ %.2f: %v)\n",
		prTaxi, utTaxi, obj.MaxPrivacy, prTaxi <= obj.MaxPrivacy+0.05)
	fmt.Printf("  commuters: privacy %.3f, utility %.3f (meets Pr ≤ %.2f: %v)\n",
		prComm, utComm, obj.MaxPrivacy, prComm <= obj.MaxPrivacy+0.05)
	if prComm > prTaxi+0.05 {
		fmt.Println("\n→ the taxi configuration leaks substantially more on commuters;")
		fmt.Println("  dataset properties belong in the model (framework step 1), and the")
		fmt.Println("  automated pipeline re-derives the right configuration per dataset.")
	}
}

// measure protects the dataset at one GEO-I ε and returns the mean paper
// metrics.
func measure(d *trace.Dataset, eps float64) (pr, ut float64) {
	sweep := &eval.Sweep{
		Mechanism: lppm.NewGeoIndistinguishability(),
		Param:     lppm.EpsilonParam,
		Values:    []float64{eps},
		Metrics: []metrics.Metric{
			metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
			metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		},
		Repeats: 3,
		Seed:    7,
	}
	res, err := eval.Run(context.Background(), sweep, d)
	if err != nil {
		log.Fatal(err)
	}
	return res.Points[0].Mean["poi_retrieval"], res.Points[0].Mean["area_coverage"]
}
