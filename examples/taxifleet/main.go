// Taxifleet: the end-to-end fleet-operator scenario. A taxi company wants
// to publish its dispatch traces for traffic analytics without exposing
// drivers' personal places. The example generates the fleet, runs the
// framework, deploys the recommended ε, and then *verifies empirically* that
// the protected release meets both objectives — including the ground-truth
// check against the drivers' actual anchor places that only the simulator
// can provide.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/poi"
	"repro/internal/rng"
	"repro/internal/stat"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	gen := synth.DefaultConfig()
	gen.NumDrivers = 40
	gen.Duration = 24 * time.Hour
	fleet, err := synth.Generate(gen, nil)
	if err != nil {
		log.Fatal(err)
	}
	dataset := fleet.Dataset
	fmt.Printf("fleet: %d cabs, %d GPS fixes over %v\n",
		dataset.NumUsers(), dataset.NumRecords(), gen.Duration)

	privacy := metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig())
	utility := metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig())

	def := core.Definition{
		Mechanism: lppm.NewGeoIndistinguishability(),
		Privacy:   privacy,
		Utility:   utility,
		Repeats:   2,
		Seed:      7,
	}
	analysis, err := core.Analyze(context.Background(), def, dataset)
	if err != nil {
		log.Fatal(err)
	}

	obj := model.Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}
	cfg, err := analysis.Configure(obj)
	if err != nil {
		log.Fatal(err)
	}
	if !cfg.Feasible {
		log.Fatalf("objectives infeasible; relax one of them (%+v)", cfg)
	}
	fmt.Printf("framework recommends ε = %.4g\n", cfg.Value)

	// Deploy: protect the release with the recommended ε.
	mech := lppm.NewGeoIndistinguishability()
	protected, err := lppm.ProtectDataset(dataset, mech,
		lppm.Params{lppm.EpsilonParam: cfg.Value}, rng.New(2024))
	if err != nil {
		log.Fatal(err)
	}

	// Verify with the evaluation metrics on fresh noise.
	var prs, uts []float64
	for _, u := range dataset.Users() {
		p, err := privacy.Evaluate(dataset.Trace(u), protected.Trace(u))
		if err != nil {
			log.Fatal(err)
		}
		v, err := utility.Evaluate(dataset.Trace(u), protected.Trace(u))
		if err != nil {
			log.Fatal(err)
		}
		prs = append(prs, p)
		uts = append(uts, v)
	}
	fmt.Printf("measured on release: POI retrieval %.3f (objective ≤ %.2f), coverage %.3f (objective ≥ %.2f)\n",
		stat.Mean(prs), obj.MaxPrivacy, stat.Mean(uts), obj.MinUtility)

	// Ground-truth audit: how many of the drivers' true anchor places can
	// an attacker running POI extraction on the release still find?
	extractor, err := poi.NewExtractor(poi.DefaultExtractorConfig())
	if err != nil {
		log.Fatal(err)
	}
	var hits []float64
	for _, u := range dataset.Users() {
		found := extractor.POIs(protected.Trace(u))
		frac, err := poi.MatchPoints(fleet.Anchors[u], found, 200)
		if err != nil {
			log.Fatal(err)
		}
		hits = append(hits, frac)
	}
	fmt.Printf("ground truth: %.1f%% of true anchor places recoverable from the release\n",
		100*stat.Mean(hits))

	if stat.Mean(prs) <= obj.MaxPrivacy && stat.Mean(uts) >= obj.MinUtility {
		fmt.Println("release APPROVED: both objectives hold empirically")
	} else {
		fmt.Println("release REJECTED: re-run with tighter objectives")
	}
}
