// Crowdmap: a utility-first scenario. A city builds a congestion heat map
// from protected taxi traces and wants to know, for each candidate LPPM,
// how much protection it can afford before the heat map degrades below 85 %
// coverage fidelity. The example sweeps three mechanisms (GEO-I, Gaussian
// perturbation, grid cloaking), prints their privacy-utility frontiers, and
// reports the strongest setting of each that still serves the map — showing
// the framework's modularity across mechanisms (paper §4 future work).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/eval"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/stat"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	gen := synth.DefaultConfig()
	gen.NumDrivers = 25
	gen.Duration = 12 * time.Hour
	fleet, err := synth.Generate(gen, nil)
	if err != nil {
		log.Fatal(err)
	}
	dataset := fleet.Dataset
	fmt.Printf("crowd map sources: %d cabs, %d fixes\n", dataset.NumUsers(), dataset.NumRecords())

	ms := []metrics.Metric{
		metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
	}
	const minUtility = 0.85

	type candidate struct {
		mech  lppm.Mechanism
		param string
		// strongerIsLower reports whether smaller parameter values mean
		// more protection (true for GEO-I's ε, false for σ and cell
		// size, where bigger means more protection).
		strongerIsLower bool
	}
	candidates := []candidate{
		{lppm.NewGeoIndistinguishability(), lppm.EpsilonParam, true},
		{lppm.NewGaussianPerturbation(), lppm.SigmaParam, false},
		{lppm.NewGridCloaking(), lppm.CellSizeParam, false},
	}

	for _, c := range candidates {
		spec := c.mech.Params()[0]
		sweep := &eval.Sweep{
			Mechanism: c.mech,
			Param:     c.param,
			Values:    stat.LogSpace(spec.Min, spec.Max, 17),
			Metrics:   ms,
			Repeats:   2,
			Seed:      11,
		}
		res, err := eval.Run(context.Background(), sweep, dataset)
		if err != nil {
			log.Fatal(err)
		}
		xs, pr, err := res.Series("poi_retrieval")
		if err != nil {
			log.Fatal(err)
		}
		_, ut, err := res.Series("area_coverage")
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n%s frontier (%s):\n", c.mech.Name(), spec.Unit)
		for i := range xs {
			fmt.Printf("  %-12.5g privacy-leak=%.3f  utility=%.3f\n", xs[i], pr[i], ut[i])
		}

		// Pick the most protective value that still serves the heat map.
		best := -1
		if c.strongerIsLower {
			for i := range xs { // ascending values: first feasible is strongest
				if ut[i] >= minUtility {
					best = i
					break
				}
			}
		} else {
			for i := len(xs) - 1; i >= 0; i-- { // descending protection
				if ut[i] >= minUtility {
					best = i
					break
				}
			}
		}
		if best < 0 {
			fmt.Printf("  -> no setting keeps utility ≥ %.2f\n", minUtility)
			continue
		}
		fmt.Printf("  -> strongest usable setting: %s=%.5g (leak %.3f, utility %.3f)\n",
			c.param, xs[best], pr[best], ut[best])
	}
}
