// Example network: the protection middleware behind its HTTP front-end.
// An in-process server fronts the gateway on a loopback listener; a client
// streams a synthetic fleet through POST /v1/stream, the operator
// hot-swaps the serving parameter mid-stream via POST /v1/reconfigure, and
// a graceful drain delivers every tail window before shutdown. Run with:
//
//	go run ./examples/network
package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/trace"
)

// logger is the example's structured logger; run rebuilds it once the
// gateway exists so every line carries the serving generation.
var logger *slog.Logger

func main() {
	logger = obs.NewLogger(os.Stderr, obs.LoggerOptions{})
	if err := run(); err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
}

func run() error {
	// A small synthetic fleet, merged into one time-ordered live stream.
	gen := synth.DefaultConfig()
	gen.NumDrivers = 6
	gen.Duration = 2 * time.Hour
	fleet, err := synth.Generate(gen, nil)
	if err != nil {
		return err
	}
	var recs []trace.Record
	for _, tr := range fleet.Dataset.Traces() {
		recs = append(recs, tr.Records...)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
	fmt.Printf("fleet: %d drivers, %d records\n", gen.NumDrivers, len(recs))

	// Deployment → gateway → HTTP front-end on a loopback listener.
	mech := lppm.NewGeoIndistinguishability()
	dep, err := core.NewDeployment(mech, lppm.Params{lppm.EpsilonParam: 0.005})
	if err != nil {
		return err
	}
	gwCfg := service.ConfigFromDeployment(dep, 42)
	gwCfg.Shards = 4
	gwCfg.FlushEvery = 16
	gw, err := service.New(context.Background(), gwCfg)
	if err != nil {
		return err
	}
	logger = obs.NewLogger(os.Stderr, obs.LoggerOptions{Generation: gw.Generation})
	srv, err := server.New(server.Config{Gateway: gw, Seed: 42})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Shutdown waits for in-flight responses, unlike Close.
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "example: shutdown: %v\n", err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", base)

	// Stream the first half, hot-swap ε mid-stream, stream the rest.
	cl := client.New(base)
	ctx := context.Background()
	st, err := cl.Stream(ctx)
	if err != nil {
		return err
	}
	received := make(chan int, 1)
	go func() {
		n := 0
		for {
			if _, err := st.Recv(); err != nil {
				if err != io.EOF {
					logger.Error("recv", "err", err)
				}
				received <- n
				return
			}
			n++
		}
	}()
	half := len(recs) / 2
	for _, rec := range recs[:half] {
		if err := st.Send(rec); err != nil {
			return err
		}
	}
	gen2, err := cl.Reconfigure(ctx, map[string]float64{string(lppm.EpsilonParam): 0.05}, nil)
	if err != nil {
		return err
	}
	fmt.Printf("hot-swapped to ε=0.05 (generation %d) with the stream live\n", gen2)
	for _, rec := range recs[half:] {
		if err := st.Send(rec); err != nil {
			return err
		}
	}
	if err := st.CloseSend(); err != nil {
		return err
	}
	n := <-received

	d, err := cl.Deployment(ctx)
	if err != nil {
		return err
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("received %d protected records over the socket\n", n)
	fmt.Printf("deployment: mechanism=%s generation=%d epsilon=%v\n",
		d.Mechanism, d.Generation, d.Params["epsilon"])
	fmt.Printf("gateway: ingested=%d emitted=%d dropped=%d swaps=%d across %d shards\n",
		stats.Gateway.Ingested, stats.Gateway.Emitted, stats.Gateway.Dropped,
		stats.Gateway.Swaps, stats.Gateway.Shards)

	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		return err
	}
	fmt.Println("drained: every user stream flushed exactly once")
	return nil
}
