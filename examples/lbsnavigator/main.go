// LBS navigator: close the loop from ε to what the end user experiences. A
// navigation/recommendation service answers "5 nearest venues" from the
// *protected* position; this example configures GEO-I with the framework
// using the end-to-end service-quality metric itself (not a geometric
// proxy) as the utility objective — the modularity that paper §3 promises:
// swap the metric, re-run the same three steps.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/lbs"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// A fleet of couriers in San Francisco, and the venue database their
	// navigation service queries.
	gen := synth.DefaultConfig()
	gen.NumDrivers = 20
	gen.Duration = 10 * time.Hour
	fleet, err := synth.Generate(gen, nil)
	if err != nil {
		log.Fatal(err)
	}
	box, ok := fleet.Dataset.BBox()
	if !ok {
		log.Fatal("empty dataset")
	}
	venues, err := lbs.GenerateVenues(box, 2000, rng.New(7))
	if err != nil {
		log.Fatal(err)
	}
	index, err := lbs.NewIndex(venues, 500)
	if err != nil {
		log.Fatal(err)
	}
	quality, err := lbs.NewKNNQuality(index, lbs.DefaultKNNQualityConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service: %d venues indexed, top-%d queries along each trace\n",
		index.Len(), lbs.DefaultKNNQualityConfig().K)

	// The framework's three steps, with the deployed service's own
	// quality as the utility metric.
	def := core.Definition{
		Mechanism: lppm.NewGeoIndistinguishability(),
		Privacy:   metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		Utility:   quality,
		Repeats:   2,
		Seed:      42,
	}
	analysis, err := core.Analyze(context.Background(), def, fleet.Dataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("models: Pr = %.3f + %.3f·ln(ε) | ServiceQuality = %.3f + %.3f·ln(ε)\n",
		analysis.PrivacyModel.A, analysis.PrivacyModel.B,
		analysis.UtilityModel.A, analysis.UtilityModel.B)

	// Objective: leak ≤ 10 % of POIs while keeping ≥ 70 % of the
	// service's recommendations correct.
	obj := model.Objectives{MaxPrivacy: 0.10, MinUtility: 0.70}
	cfg, err := analysis.Configure(obj)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.Feasible {
		fmt.Printf("configured (Equation 2): ε = %.4g (window [%.4g, %.4g])\n", cfg.Value, cfg.Min, cfg.Max)
	} else {
		// The log-linear model is only valid inside its active zone and
		// can be pessimistic near the window edges; the sigmoid models
		// the full curve, so try it before giving up.
		fmt.Println("Equation-2 models report the window empty; retrying with full-curve sigmoid models")
		cfg, err = analysis.ConfigureFullCurve(obj)
		if err != nil {
			log.Fatal(err)
		}
		if !cfg.Feasible {
			fmt.Println("objectives genuinely infeasible — the reachable trade-offs (Pareto front):")
			front, err := analysis.Pareto()
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range front {
				fmt.Printf("  ε=%.4g  privacy=%.3f quality=%.3f\n", p.X, p.Privacy, p.Utility)
			}
			return
		}
		fmt.Printf("configured (sigmoid): ε = %.4g (window [%.4g, %.4g])\n", cfg.Value, cfg.Min, cfg.Max)
	}

	// Deploy check: protect fresh data at the recommendation and measure
	// what couriers actually see.
	protected, err := lppm.ProtectDataset(fleet.Dataset, def.Mechanism,
		lppm.Params{lppm.EpsilonParam: cfg.Value}, rng.New(99))
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	users := fleet.Dataset.Users()
	for _, u := range users {
		v, err := quality.Evaluate(fleet.Dataset.Trace(u), protected.Trace(u))
		if err != nil {
			log.Fatal(err)
		}
		sum += v
	}
	fmt.Printf("deployed at ε=%.4g: %.0f%% of recommendations identical to the unprotected service\n",
		cfg.Value, 100*sum/float64(len(users)))
}
