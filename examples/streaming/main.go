// Streaming: the full paper pipeline wired to live traffic. Steps 1–3
// (Analyze → Deploy) pick the GEO-I ε offline exactly as in the quickstart;
// the resulting deployment then serves an online location stream through the
// sharded protection gateway — per-user routing, bounded queues, windowed
// flushing — instead of a one-shot batch job.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)

	// Offline: a day of synthetic cabs, analyzed and configured.
	gen := synth.DefaultConfig()
	gen.NumDrivers = 30
	gen.Duration = 12 * time.Hour
	fleet, err := synth.Generate(gen, nil)
	if err != nil {
		log.Fatal(err)
	}
	def := core.Definition{
		Mechanism: lppm.NewGeoIndistinguishability(),
		Privacy:   metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		Utility:   metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		Repeats:   2,
		Seed:      42,
	}
	analysis, err := core.Analyze(context.Background(), def, fleet.Dataset)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := analysis.Deploy(model.Objectives{MaxPrivacy: 0.10, MinUtility: 0.80})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deploying %s with %s = %.4g\n", dep.Mechanism.Name(), dep.Param, dep.Params[dep.Param])

	// Online: flatten the dataset into one global time-ordered stream —
	// the shape of live traffic, records of all users interleaved.
	var stream []trace.Record
	for _, tr := range fleet.Dataset.Traces() {
		stream = append(stream, tr.Records...)
	}
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].Time.Before(stream[j].Time) })

	cfg := service.ConfigFromDeployment(dep, 42)
	cfg.Shards = 4
	cfg.FlushEvery = 16
	gw, err := service.New(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	protected := make(chan int)
	go func() {
		n := 0
		for batch := range gw.Output() {
			n += len(batch)
		}
		protected <- n
	}()
	start := time.Now()
	if err := gw.IngestAll(stream); err != nil {
		log.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		log.Fatal(err)
	}
	n := <-protected
	elapsed := time.Since(start)

	st := gw.Stats()
	fmt.Printf("streamed %d records of %d users through %d shards in %s (%.0f points/sec)\n",
		st.Ingested, st.Users, len(st.PerShard), elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds())
	for i, ss := range st.PerShard {
		fmt.Printf("  shard %d: %d users, %d records, %d flushes\n", i, ss.Users, ss.Ingested, ss.Flushes)
	}
	if n != len(stream) {
		log.Fatalf("protected %d records, ingested %d", n, len(stream))
	}
	fmt.Println("every ingested record came back protected")
}
