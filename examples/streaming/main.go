// Streaming: the full paper pipeline wired to live traffic — and kept
// closed over it. Steps 1–3 (Analyze → Deploy) pick the GEO-I ε offline
// exactly as in the quickstart; the resulting deployment then serves an
// online location stream through the sharded protection gateway. A
// reconfiguration controller taps the served stream, estimates the live
// privacy/utility, and when the designer tightens the objectives
// mid-stream it re-runs the analysis on the observed data and hot-swaps
// the re-configured ε into the gateway — no restart, no record lost.
package main

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/trace"
)

// logger is the example's structured logger; once the gateway exists it
// is rebuilt to stamp the serving generation on every line.
var logger *slog.Logger

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}

func main() {
	logger = obs.NewLogger(os.Stderr, obs.LoggerOptions{})

	// Offline: a day of synthetic cabs, analyzed and configured — here
	// under deliberately loose objectives, the kind of first guess a
	// designer later revisits.
	gen := synth.DefaultConfig()
	gen.NumDrivers = 30
	gen.Duration = 12 * time.Hour
	fleet, err := synth.Generate(gen, nil)
	if err != nil {
		fatal(err)
	}
	def := core.Definition{
		Mechanism: lppm.NewGeoIndistinguishability(),
		Privacy:   metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		Utility:   metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		Repeats:   2,
		Seed:      42,
	}
	analysis, err := core.Analyze(context.Background(), def, fleet.Dataset)
	if err != nil {
		fatal(err)
	}
	loose := model.Objectives{MaxPrivacy: 0.95, MinUtility: 0.10}
	dep, err := analysis.Deploy(loose)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("deploying %s with %s = %.4g (objectives: privacy ≤ %.2f, utility ≥ %.2f)\n",
		dep.Mechanism.Name(), dep.Param, dep.Params[dep.Param], loose.MaxPrivacy, loose.MinUtility)

	// Online: flatten the dataset into one global time-ordered stream —
	// the shape of live traffic, records of all users interleaved.
	var stream []trace.Record
	for _, tr := range fleet.Dataset.Traces() {
		stream = append(stream, tr.Records...)
	}
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].Time.Before(stream[j].Time) })

	cfg := service.ConfigFromDeployment(dep, 42)
	cfg.Shards = 4
	cfg.FlushEvery = 16
	cfg.StageSize = 1 // no ingest staging: phase-1 windows flush promptly
	gw, err := service.New(context.Background(), cfg)
	if err != nil {
		fatal(err)
	}
	// From here every log line carries the serving generation — it flips
	// from 0 to 1 when the controller hot-swaps below.
	logger = obs.NewLogger(os.Stderr, obs.LoggerOptions{Generation: gw.Generation})
	// The controller closes the loop over the served stream: it observes
	// a quarter of the flushed windows and re-runs Define→Model→Configure
	// on the observed data whenever the estimates drift outside the
	// objectives.
	reDef := def
	reDef.GridPoints = 9 // online re-analysis trades resolution for latency
	reDef.Repeats = 1
	ctrl, err := service.NewController(gw, dep, service.ControllerConfig{
		Definition: reDef,
		Objectives: loose,
		SampleFrac: 0.25,
		Tolerance:  0.05,
		Seed:       7,
	})
	if err != nil {
		fatal(err)
	}
	protected := make(chan int, 1)
	go func() {
		n := 0
		for wnd := range gw.Output() {
			n += len(wnd.Records)
		}
		protected <- n
	}()

	start := time.Now()
	half := len(stream) / 2
	if err := gw.IngestAll(stream[:half]); err != nil {
		fatal(err)
	}
	// IngestAll returns once records are queued, not flushed: wait until
	// the controller has actually observed enough phase-1 windows, or
	// Evaluate would no-op on an empty aggregate and the narrative below
	// would be wrong.
	for deadline := time.Now().Add(10 * time.Second); ctrl.Stats().WindowsObserved < 40; {
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("phase-1 windows never observed: %+v", ctrl.Stats()))
		}
		time.Sleep(time.Millisecond)
	}
	// Mid-stream the designer tightens the contract on both sides. The
	// loose ε over-protects — observed utility sits far below the new
	// floor — so the controller re-configures from the observed traffic
	// and hot-swaps the result into the running gateway.
	tight := model.Objectives{MaxPrivacy: 0.30, MinUtility: 0.65}
	if err := ctrl.SetObjectives(tight); err != nil {
		fatal(err)
	}
	// Counters snapshot before Evaluate: a swap resets the aggregates, so
	// reading them after would misreport the data the decision used.
	pre := ctrl.Stats()
	swapped, err := ctrl.Evaluate(context.Background())
	cs := ctrl.Stats()
	fmt.Printf("mid-stream: objectives tightened to privacy ≤ %.2f, utility ≥ %.2f\n",
		tight.MaxPrivacy, tight.MinUtility)
	fmt.Printf("controller: observed %d windows of %d users, estimates privacy=%.3f utility=%.3f\n",
		pre.WindowsObserved, pre.UsersTracked, cs.LastPrivacy, cs.LastUtility)
	switch {
	case err != nil:
		fmt.Printf("controller: reconfiguration failed, keeping old ε: %v\n", err)
	case swapped:
		fmt.Printf("controller: drift detected, hot-swapped %s = %.4g (generation %d)\n",
			dep.Param, ctrl.Deployed().Params[dep.Param], gw.Generation())
	default:
		fmt.Println("controller: observed stream still meets the objectives, nothing to do")
	}
	if err := gw.IngestAll(stream[half:]); err != nil {
		fatal(err)
	}
	if err := gw.Close(); err != nil {
		fatal(err)
	}
	n := <-protected
	elapsed := time.Since(start)

	st := gw.Stats()
	fmt.Printf("streamed %d records of %d users through %d shards in %s (%.0f points/sec)\n",
		st.Ingested, st.Users, len(st.PerShard), elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds())
	fmt.Printf("swaps=%d stream-reconfigs=%d dropped=%d\n", st.Swaps, st.Reconfigs, st.Dropped)
	for i, ss := range st.PerShard {
		fmt.Printf("  shard %d: %d users, %d records, %d flushes\n", i, ss.Users, ss.Ingested, ss.Flushes)
	}
	if n != len(stream) {
		fatal(fmt.Errorf("protected %d records, ingested %d", n, len(stream)))
	}
	fmt.Println("every ingested record came back protected — across the swap")
}
