// Composite deployment: real systems stack defenses — minimize first
// (publish one fix per period), then perturb what remains (GEO-I). That
// pipeline has two knobs, so the single-parameter walkthrough of the paper
// no longer suffices: this example maps the (ε × period) response surface
// of Equation 1, configures both parameters jointly from measured data, and
// cross-checks the answer with the fitted surface's partial inversion.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/eval"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/stat"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	gen := synth.DefaultConfig()
	gen.NumDrivers = 16
	gen.Duration = 10 * time.Hour
	fleet, err := synth.Generate(gen, nil)
	if err != nil {
		log.Fatal(err)
	}

	pipe, err := lppm.NewPipeline("sampled-geoi",
		lppm.NewTemporalSampling(), lppm.NewGeoIndistinguishability())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mechanism: %s with parameters %v\n", pipe.Name(), paramNames(pipe))

	epsGrid := stat.LogSpace(1e-3, 1e-1, 7)
	periodGrid := stat.LogSpace(60, 1800, 4)
	sweep := &eval.Sweep2D{
		Mechanism: pipe,
		ParamX:    "geoi.epsilon",
		ParamY:    "sampling.period_sec",
		ValuesX:   epsGrid,
		ValuesY:   periodGrid,
		Metrics: []metrics.Metric{
			metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
			metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		},
		Repeats: 1,
		Seed:    42,
	}
	res, err := eval.RunGrid(context.Background(), sweep, fleet.Dataset)
	if err != nil {
		log.Fatal(err)
	}

	priv, err := res.Surface("poi_retrieval")
	if err != nil {
		log.Fatal(err)
	}
	util, err := res.Surface("area_coverage")
	if err != nil {
		log.Fatal(err)
	}
	pSurf, err := model.FitSurface(epsGrid, periodGrid, priv, true, true)
	if err != nil {
		log.Fatal(err)
	}
	uSurf, err := model.FitSurface(epsGrid, periodGrid, util, true, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("privacy surface: %v\n", pSurf)
	fmt.Printf("utility surface: %v\n", uSurf)

	obj := model.Objectives{MaxPrivacy: 0.15, MinUtility: 0.70}
	cells, best, ok := model.FeasiblePairs(epsGrid, periodGrid, priv, util, obj)
	feasible := 0
	for _, c := range cells {
		if c.Feasible {
			feasible++
		}
	}
	fmt.Printf("objectives Pr ≤ %.2f, Ut ≥ %.2f: %d/%d grid cells feasible\n",
		obj.MaxPrivacy, obj.MinUtility, feasible, len(cells))
	if !ok {
		fmt.Println("no feasible cell — relax an objective or drop a stage")
		return
	}
	fmt.Printf("joint configuration: ε = %.4g, period = %.0f s (measured Pr %.3f, Ut %.3f)\n",
		best.X, best.Y, best.Privacy, best.Utility)

	// Cross-check with the model: at the chosen period, invert the
	// privacy surface for the bound.
	eps, err := pSurf.InvertX(obj.MaxPrivacy, best.Y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surface cross-check: at period %.0f s the model puts Pr = %.2f at ε = %.4g\n",
		best.Y, obj.MaxPrivacy, eps)

	// The deployment insight the surface makes quantitative: sampling
	// less often buys privacy (By < 0 on the privacy surface) but costs
	// coverage (By < 0 on the utility surface too) — the framework
	// resolves the three-way trade automatically.
	fmt.Printf("per-decade-of-period effect: privacy %+.3f, utility %+.3f\n",
		pSurf.By*2.302585, uSurf.By*2.302585)
}

func paramNames(m lppm.Mechanism) []string {
	specs := m.Params()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}
