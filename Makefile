GO ?= go

.PHONY: all check vet build test bench-smoke bench clean

all: check

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick single-pass gateway benchmark, as a CI smoke that the serving
# path still runs end-to-end.
bench-smoke:
	$(GO) test -run '^$$' -bench=Gateway -benchtime=1x .

bench:
	$(GO) test -run '^$$' -bench=. -benchmem .

clean:
	$(GO) clean ./...
