GO ?= go

.PHONY: all check vet lint build test bench-smoke bench bench-serve bench-obs bench-journal fuzz-smoke trace-smoke clean

all: check

check: vet lint build test

vet:
	$(GO) vet ./...

# The project-invariant analyzer suite (internal/analysis): determinism,
# error, lock, float-comparison, and concurrency discipline. -list
# additionally fails if any analyzer lacks a golden test. LINT_JOBS caps
# the parallel type-check/analysis workers (0 = GOMAXPROCS); output is
# identical at every value.
LINT_JOBS ?= 0
lint:
	$(GO) run ./cmd/lppm-lint -list
	$(GO) run ./cmd/lppm-lint -j $(LINT_JOBS)

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick single-pass benchmarks, as a CI smoke that the serving path and
# the evaluation hot path still run end-to-end. The eval benchmark also
# records its metrics to BENCH_eval.json so the perf trajectory is kept.
bench-smoke:
	BENCH_EVAL_JSON=BENCH_eval.json $(GO) test -run '^$$' -bench='Gateway|AnalyzeHotPath' -benchtime=1x -benchmem .

bench:
	$(GO) test -run '^$$' -bench=. -benchmem .

# Observability overhead: the same gateway workload with collection on —
# registry plus a fully-sampled span tracer — and with everything off
# (obs.Nop(), nil tracer), interleaved per iteration. The benchmark
# asserts bit-identical protected output in both modes always, and the
# < 2% throughput budget once the sample is long enough to mean something;
# the measurement lands in BENCH_obs.json (CI applies a looser 5% red line
# to it on multicore runners, see ci.yml).
bench-obs:
	BENCH_OBS_JSON=BENCH_obs.json $(GO) test -run '^$$' -bench='ObsOverhead' -benchtime=20x .

# Journal (crash-safety) overhead: the same gateway workload with the
# write-behind journal on and off, interleaved per iteration. The
# benchmark asserts bit-identical protected output in both modes always,
# and the < 5% throughput budget once the sample is long enough and a
# core is free for the pump (single-CPU hosts serialize the journal work
# with protection and measure the disk, not the design); the measurement
# lands in BENCH_journal.json and CI gates on it under the same
# multicore condition, see ci.yml.
bench-journal:
	BENCH_JOURNAL_JSON=BENCH_journal.json $(GO) test -run '^$$' -bench='JournalOverhead' -benchtime=20x .

# Short fuzz pass over the journal frame decoder and the traceparent
# parser: the fuzz engine mutates the committed corpora (torn frames,
# flipped CRCs, truncated varints; malformed W3C headers) and each target
# asserts its decoder never panics and round-trips what it accepts. Go
# runs one -fuzz target per invocation, so the two run back to back.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzDecode' -fuzztime 10s ./internal/journal
	$(GO) test -run '^$$' -fuzz 'FuzzParseTraceparent' -fuzztime 10s ./internal/obs/tracing

# Tracing smoke: drive a traced fleet through the in-process server and
# dump the span ring as Chrome trace_event JSON (trace.chrome) — the file
# CI uploads and the README's Perfetto walkthrough loads.
trace-smoke:
	$(GO) run ./cmd/lppm-load -self-serve -users 4 -points 96 -flush 16 \
		-conns 2 -trace-out trace.chrome

# Loopback serving smoke: the load generator drives a synthetic fleet
# through the HTTP front-end and records throughput + latency percentiles
# to BENCH_serve.json. Compared shard layouts run in interleaved rounds
# inside one process — the bench container is single-CPU, so numbers from
# separate runs confound with machine state and are never comparable.
bench-serve:
	$(GO) run ./cmd/lppm-load -self-serve -users 8 -points 192 -flush 32 \
		-conns 2 -compare-shards 1,4 -rounds 2 -out BENCH_serve.json

clean:
	$(GO) clean ./...
