GO ?= go

.PHONY: all check vet build test bench-smoke bench clean

all: check

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick single-pass benchmarks, as a CI smoke that the serving path and
# the evaluation hot path still run end-to-end. The eval benchmark also
# records its metrics to BENCH_eval.json so the perf trajectory is kept.
bench-smoke:
	BENCH_EVAL_JSON=BENCH_eval.json $(GO) test -run '^$$' -bench='Gateway|AnalyzeHotPath' -benchtime=1x -benchmem .

bench:
	$(GO) test -run '^$$' -bench=. -benchmem .

clean:
	$(GO) clean ./...
